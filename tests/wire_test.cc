#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "wire/connection.h"
#include "wire/messages.h"
#include "wire/rpc.h"

namespace dlog::wire {
namespace {

// --- Message codecs ---

LogRecord MakeRecord(Lsn lsn, Epoch epoch, bool present,
                     std::string_view data) {
  LogRecord r;
  r.lsn = lsn;
  r.epoch = epoch;
  r.present = present;
  r.data = ToBytes(data);
  return r;
}

TEST(MessagesTest, RecordBatchRoundTrip) {
  RecordBatch batch;
  batch.client = 42;
  batch.epoch = 3;
  batch.records = {MakeRecord(1, 3, true, "alpha"),
                   MakeRecord(2, 3, false, "")};
  Bytes wire = EncodeRecordBatch(MessageType::kForceLog, batch);

  Result<Envelope> env = DecodeEnvelope(wire);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->type, MessageType::kForceLog);
  EXPECT_EQ(env->rpc_id, 0u);
  Result<RecordBatch> decoded = DecodeRecordBatch(env->body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->client, 42u);
  EXPECT_EQ(decoded->epoch, 3u);
  ASSERT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(decoded->records[0], batch.records[0]);
  EXPECT_EQ(decoded->records[1], batch.records[1]);
}

TEST(MessagesTest, AsyncMessagesRoundTrip) {
  {
    Bytes w = EncodeNewInterval({7, 4, 100});
    Result<Envelope> env = DecodeEnvelope(w);
    ASSERT_TRUE(env.ok());
    EXPECT_EQ(env->type, MessageType::kNewInterval);
    auto m = DecodeNewInterval(env->body);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->client, 7u);
    EXPECT_EQ(m->epoch, 4u);
    EXPECT_EQ(m->starting_lsn, 100u);
  }
  {
    Bytes w = EncodeNewHighLsn({55});
    auto env = DecodeEnvelope(w);
    ASSERT_TRUE(env.ok());
    EXPECT_EQ(DecodeNewHighLsn(env->body)->new_high_lsn, 55u);
  }
  {
    Bytes w = EncodeMissingInterval({10, 19});
    auto env = DecodeEnvelope(w);
    ASSERT_TRUE(env.ok());
    auto m = DecodeMissingInterval(env->body);
    EXPECT_EQ(m->low, 10u);
    EXPECT_EQ(m->high, 19u);
  }
}

TEST(MessagesTest, RpcMessagesRoundTrip) {
  {
    Bytes w = EncodeIntervalListReq({9}, 77);
    auto env = DecodeEnvelope(w);
    ASSERT_TRUE(env.ok());
    EXPECT_EQ(env->rpc_id, 77u);
    EXPECT_EQ(DecodeIntervalListReq(env->body)->client, 9u);
  }
  {
    IntervalListResp resp;
    resp.intervals = {{1, 1, 3}, {3, 3, 9}};
    Bytes w = EncodeIntervalListResp(resp, 77);
    auto env = DecodeEnvelope(w);
    auto m = DecodeIntervalListResp(env->body);
    ASSERT_TRUE(m.ok());
    ASSERT_EQ(m->intervals.size(), 2u);
    EXPECT_EQ(m->intervals[1], (Interval{3, 3, 9}));
  }
  {
    Bytes w = EncodeReadLogReq(MessageType::kReadLogBackwardReq, {4, 12}, 5);
    auto env = DecodeEnvelope(w);
    EXPECT_EQ(env->type, MessageType::kReadLogBackwardReq);
    auto m = DecodeReadLogReq(env->body);
    EXPECT_EQ(m->lsn, 12u);
  }
  {
    ReadLogResp resp;
    resp.status = RpcStatus::kNotFound;
    Bytes w = EncodeReadLogResp(resp, 5);
    auto env = DecodeEnvelope(w);
    EXPECT_EQ(DecodeReadLogResp(env->body)->status, RpcStatus::kNotFound);
  }
  {
    CopyLogReq req;
    req.client = 1;
    req.epoch = 4;
    req.records = {MakeRecord(9, 4, true, "copy")};
    Bytes w = EncodeCopyLogReq(req, 8);
    auto env = DecodeEnvelope(w);
    auto m = DecodeCopyLogReq(env->body);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->records[0].data, ToBytes("copy"));
  }
  {
    Bytes w = EncodeInstallCopiesReq({1, 4}, 9);
    auto env = DecodeEnvelope(w);
    EXPECT_EQ(DecodeInstallCopiesReq(env->body)->epoch, 4u);
  }
  {
    Bytes w = EncodeGenWriteReq({3, 1234}, 10);
    auto env = DecodeEnvelope(w);
    auto m = DecodeGenWriteReq(env->body);
    EXPECT_EQ(m->client, 3u);
    EXPECT_EQ(m->value, 1234u);
  }
  {
    GenReadResp resp;
    resp.value = 88;
    Bytes w = EncodeGenReadResp(resp, 11);
    auto env = DecodeEnvelope(w);
    EXPECT_EQ(DecodeGenReadResp(env->body)->value, 88u);
  }
}

TEST(MessagesTest, GarbageIsRejected) {
  EXPECT_FALSE(DecodeEnvelope(ToBytes("")).ok());
  EXPECT_FALSE(DecodeEnvelope(ToBytes("\xFFgarbage")).ok());
}

TEST(MessagesTest, EncodedRecordSizeMatchesActual) {
  RecordBatch batch;
  batch.client = 1;
  batch.epoch = 1;
  const LogRecord r = MakeRecord(5, 1, true, "0123456789");
  Bytes empty = EncodeRecordBatch(MessageType::kWriteLog, batch);
  batch.records.push_back(r);
  Bytes one = EncodeRecordBatch(MessageType::kWriteLog, batch);
  EXPECT_EQ(one.size() - empty.size(), EncodedRecordSize(r));
  EXPECT_EQ(empty.size(), RecordBatchOverhead());
}

// --- Connection / Endpoint ---

struct TestPeer {
  TestPeer(sim::Simulator* sim, net::Network* network, net::NodeId id,
           const WireConfig& cfg = WireConfig{})
      : cpu(sim, 100.0), nic(sim, 64), endpoint(sim, &cpu, id, cfg) {
    network->Attach(id, &nic);
    endpoint.AttachNetwork(network, &nic);
  }
  sim::Cpu cpu;
  net::Nic nic;
  Endpoint endpoint;
};

struct WirePair {
  explicit WirePair(net::NetworkConfig net_cfg = {},
                    WireConfig wire_cfg = WireConfig{})
      : network(&sim, net_cfg),
        a(&sim, &network, 1, wire_cfg),
        b(&sim, &network, 2, wire_cfg) {
    b.endpoint.SetAcceptHandler([this](Connection* conn) {
      accepted = conn;
      conn->SetMessageHandler([this](const SharedBytes& payload) {
        b_received.push_back(payload);
      });
    });
  }
  sim::Simulator sim;
  net::Network network;
  TestPeer a, b;
  Connection* accepted = nullptr;
  std::vector<SharedBytes> b_received;
};

TEST(ConnectionTest, HandshakeEstablishes) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  EXPECT_TRUE(conn->IsEstablished());
  ASSERT_NE(p.accepted, nullptr);
  EXPECT_TRUE(p.accepted->IsEstablished());
  EXPECT_EQ(p.accepted->peer(), 1u);
}

TEST(ConnectionTest, DataFlowsBothWays) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  std::vector<SharedBytes> a_received;
  conn->SetMessageHandler(
      [&](const SharedBytes& payload) { a_received.push_back(payload); });

  conn->Send(ToBytes("hello"));
  conn->Send(ToBytes("world"));
  p.sim.Run();
  ASSERT_EQ(p.b_received.size(), 2u);
  EXPECT_EQ(ToString(p.b_received[0]), "hello");
  EXPECT_EQ(ToString(p.b_received[1]), "world");

  p.accepted->Send(ToBytes("reply"));
  p.sim.Run();
  ASSERT_EQ(a_received.size(), 1u);
  EXPECT_EQ(ToString(a_received[0]), "reply");
}

TEST(ConnectionTest, SendBeforeEstablishedIsQueued) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  conn->Send(ToBytes("early"));  // handshake not yet complete
  p.sim.Run();
  ASSERT_EQ(p.b_received.size(), 1u);
  EXPECT_EQ(ToString(p.b_received[0]), "early");
}

TEST(ConnectionTest, DuplicatesAreSuppressed) {
  net::NetworkConfig net_cfg;
  net_cfg.duplicate_probability = 0.5;
  net_cfg.seed = 11;
  WirePair p(net_cfg);
  Connection* conn = p.a.endpoint.Connect(2);
  for (int i = 0; i < 50; ++i) conn->Send(ToBytes("m" + std::to_string(i)));
  p.sim.Run();
  // Every payload delivered exactly once despite wire duplication.
  ASSERT_EQ(p.b_received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ToString(p.b_received[i]), "m" + std::to_string(i));
  }
}

TEST(ConnectionTest, HandshakeRetriesThroughLossyNetwork) {
  net::NetworkConfig net_cfg;
  net_cfg.loss_probability = 0.4;
  net_cfg.seed = 3;
  WirePair p(net_cfg);
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  EXPECT_TRUE(conn->IsEstablished());
}

TEST(ConnectionTest, HandshakeExhaustionCloses) {
  WireConfig cfg;
  cfg.handshake_max_retries = 2;
  sim::Simulator sim;
  net::Network network(&sim, net::NetworkConfig{});
  TestPeer a(&sim, &network, 1, cfg);
  // No peer 2 attached: SYNs vanish.
  bool closed = false;
  Connection* conn = a.endpoint.Connect(2);
  conn->SetCloseHandler([&]() { closed = true; });
  sim.Run();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(conn->IsClosed());
}

TEST(ConnectionTest, CrashOfPeerResetsConnection) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  ASSERT_TRUE(conn->IsEstablished());

  p.b.endpoint.Crash();  // b loses all connection state
  bool closed = false;
  conn->SetCloseHandler([&]() { closed = true; });
  conn->Send(ToBytes("into the void"));
  p.sim.Run();
  // b answers with RESET for the unknown connection; a closes.
  EXPECT_TRUE(closed);
}

TEST(ConnectionTest, FlowControlBlocksBeyondAllocationUntilGranted) {
  WireConfig cfg;
  cfg.window_packets = 4;
  cfg.window_update_threshold = 2;
  cfg.allocation_override_delay = 60 * sim::kSecond;  // effectively off
  WirePair p(net::NetworkConfig{}, cfg);
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  // The receiver grants allocation as it consumes, so a long stream
  // still flows completely.
  for (int i = 0; i < 100; ++i) conn->Send(Bytes(10, 'x'));
  p.sim.Run();
  EXPECT_EQ(p.b_received.size(), 100u);
  EXPECT_EQ(conn->send_queue_depth(), 0u);
}

TEST(ConnectionTest, AllocationOverrideAfterPause) {
  // If every WINDOW grant is lost, the sender eventually exceeds its
  // allocation after the mandated pause instead of deadlocking.
  WireConfig cfg;
  cfg.window_packets = 2;
  cfg.allocation_override_delay = 3 * sim::kSecond;
  WirePair p(net::NetworkConfig{}, cfg);
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  for (int i = 0; i < 10; ++i) conn->Send(Bytes(10, 'x'));
  p.sim.RunFor(120 * sim::kSecond);
  EXPECT_EQ(p.b_received.size(), 10u);
}

// --- Datagrams (the connectionless multicast path) ---

TEST(DatagramTest, UnicastDatagramDelivered) {
  WirePair p;
  std::vector<std::pair<net::NodeId, SharedBytes>> received;
  p.b.endpoint.SetDatagramHandler(
      [&](net::NodeId src, const SharedBytes& payload) {
        received.push_back({src, payload});
      });
  p.a.endpoint.SendDatagram(2, ToBytes("hello datagram"));
  p.sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(ToString(received[0].second), "hello datagram");
}

TEST(DatagramTest, MulticastDatagramReachesGroup) {
  sim::Simulator sim;
  net::Network network(&sim, net::NetworkConfig{});
  TestPeer a(&sim, &network, 1), b(&sim, &network, 2),
      c(&sim, &network, 3);
  const net::NodeId group = net::kMulticastBase + 9;
  network.JoinGroup(group, 2);
  network.JoinGroup(group, 3);
  int b_got = 0, c_got = 0;
  b.endpoint.SetDatagramHandler(
      [&](net::NodeId, const SharedBytes&) { ++b_got; });
  c.endpoint.SetDatagramHandler(
      [&](net::NodeId, const SharedBytes&) { ++c_got; });
  a.endpoint.SendDatagram(group, ToBytes("to the group"));
  sim.Run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
  // One transmission on the medium.
  EXPECT_EQ(network.packets_sent().value(), 1u);
}

TEST(DatagramTest, NoHandlerIsSilentlyDropped) {
  WirePair p;
  p.a.endpoint.SendDatagram(2, ToBytes("nobody listening"));
  p.sim.Run();  // must not crash; packet consumed
  EXPECT_GT(p.b.endpoint.packets_received().value(), 0u);
}

TEST(DatagramTest, DatagramsDoNotDisturbConnections) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  ASSERT_TRUE(conn->IsEstablished());
  p.b.endpoint.SetDatagramHandler([](net::NodeId, const SharedBytes&) {});
  p.a.endpoint.SendDatagram(2, ToBytes("dgram"));
  conn->Send(ToBytes("stream"));
  p.sim.Run();
  ASSERT_EQ(p.b_received.size(), 1u);
  EXPECT_EQ(ToString(p.b_received[0]), "stream");
  EXPECT_TRUE(conn->IsEstablished());
}

// --- RpcClient ---

TEST(RpcClientTest, CallAndResponse) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();  // complete the handshake so the server side exists
  ASSERT_NE(p.accepted, nullptr);
  RpcClient rpc(&p.sim, conn);
  conn->SetMessageHandler([&](const SharedBytes& payload) {
    Result<Envelope> env = DecodeEnvelope(payload);
    ASSERT_TRUE(env.ok());
    rpc.HandleResponse(*env);
  });
  // Server: echo an IntervalListResp for any request.
  p.accepted->SetMessageHandler([&](const SharedBytes& payload) {
    Result<Envelope> env = DecodeEnvelope(payload);
    ASSERT_TRUE(env.ok());
    IntervalListResp resp;
    resp.intervals = {{1, 1, 5}};
    p.accepted->Send(EncodeIntervalListResp(resp, env->rpc_id));
  });

  bool done = false;
  rpc.Call(
      [](uint64_t rpc_id) { return EncodeIntervalListReq({1}, rpc_id); },
      RpcClient::CallOptions{}, [&](Result<Envelope> env) {
        ASSERT_TRUE(env.ok());
        auto resp = DecodeIntervalListResp(env->body);
        ASSERT_TRUE(resp.ok());
        EXPECT_EQ(resp->intervals.size(), 1u);
        done = true;
      });
  p.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rpc.pending(), 0u);
}

TEST(RpcClientTest, RetriesThroughLoss) {
  net::NetworkConfig net_cfg;
  net_cfg.loss_probability = 0.4;
  net_cfg.seed = 17;
  WirePair p(net_cfg);
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();  // complete the (retried) handshake first
  ASSERT_NE(p.accepted, nullptr);
  RpcClient rpc(&p.sim, conn);
  conn->SetMessageHandler([&](const SharedBytes& payload) {
    auto env = DecodeEnvelope(payload);
    if (env.ok()) rpc.HandleResponse(*env);
  });
  p.accepted->SetMessageHandler([&](const SharedBytes& payload) {
    auto env = DecodeEnvelope(payload);
    if (!env.ok()) return;
    p.accepted->Send(EncodeInstallCopiesResp({}, env->rpc_id));
  });

  int completed = 0;
  RpcClient::CallOptions opts;
  opts.max_attempts = 20;
  for (int i = 0; i < 10; ++i) {
    rpc.Call(
        [](uint64_t id) { return EncodeInstallCopiesReq({1, 1}, id); },
        opts, [&](Result<Envelope> env) {
          if (env.ok()) ++completed;
        });
  }
  p.sim.Run();
  EXPECT_EQ(completed, 10);
}

TEST(RpcClientTest, TimesOutAgainstDeadServer) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  p.sim.Run();
  p.b.nic.SetUp(false);  // server vanishes

  RpcClient rpc(&p.sim, conn);
  Status result = Status::OK();
  RpcClient::CallOptions opts;
  opts.timeout = 100 * sim::kMillisecond;
  opts.max_attempts = 3;
  rpc.Call([](uint64_t id) { return EncodeIntervalListReq({1}, id); }, opts,
           [&](Result<Envelope> env) { result = env.status(); });
  p.sim.Run();
  EXPECT_TRUE(result.IsTimedOut());
}

TEST(RpcClientTest, FailAllAbortsPending) {
  WirePair p;
  Connection* conn = p.a.endpoint.Connect(2);
  RpcClient rpc(&p.sim, conn);
  Status st = Status::OK();
  rpc.Call([](uint64_t id) { return EncodeIntervalListReq({1}, id); },
           RpcClient::CallOptions{},
           [&](Result<Envelope> env) { st = env.status(); });
  rpc.FailAll(Status::Aborted("connection reset"));
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(rpc.pending(), 0u);
  p.sim.Run();
}

}  // namespace
}  // namespace dlog::wire
