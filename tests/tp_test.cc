#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "tp/bank.h"
#include "tp/engine.h"
#include "tp/logger.h"
#include "tp/storage.h"
#include "tp/wal.h"

namespace dlog::tp {
namespace {

TEST(WalTest, RecordRoundTrip) {
  WalRecord rec;
  rec.type = WalType::kUpdate;
  rec.txn = 42;
  rec.page = 7;
  rec.offset = 128;
  rec.update_lsn = 9;
  rec.redo = ToBytes("new");
  rec.undo = ToBytes("old");
  Result<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(rec));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

TEST(WalTest, GarbageRejected) {
  EXPECT_FALSE(DecodeWalRecord(ToBytes("")).ok());
  EXPECT_FALSE(DecodeWalRecord(ToBytes("\x63junk")).ok());
}

TEST(PageDiskTest, UnwrittenPagesReadZero) {
  PageDisk disk(256);
  Page page = disk.Read(5);
  EXPECT_EQ(page.lsn, kNoLsn);
  EXPECT_EQ(page.data.size(), 256u);
  for (uint8_t b : page.data) EXPECT_EQ(b, 0);
}

TEST(BufferPoolTest, UpdateCleanCycle) {
  PageDisk disk(64);
  BufferPool pool(&disk);
  pool.ApplyUpdate(3, 8, ToBytes("abc"), 11);
  EXPECT_TRUE(pool.IsDirty(3));
  EXPECT_FALSE(disk.Exists(3));
  pool.Clean(3);
  EXPECT_FALSE(pool.IsDirty(3));
  EXPECT_EQ(disk.Read(3).lsn, 11u);
  EXPECT_EQ(disk.Read(3).data[8], 'a');
}

TEST(BufferPoolTest, LoseAllDropsDirtyData) {
  PageDisk disk(64);
  BufferPool pool(&disk);
  pool.ApplyUpdate(1, 0, ToBytes("xyz"), 5);
  pool.LoseAll();
  EXPECT_EQ(pool.Get(1).data[0], 0);  // re-read from (empty) disk
}

struct EngineFixture {
  EngineFixture(bool split = false, size_t page_bytes = 1024)
      : logger(&sim), disk(page_bytes) {
    EngineConfig cfg;
    cfg.page_bytes = page_bytes;
    cfg.split_records = split;
    engine = std::make_unique<TransactionEngine>(&sim, &logger, &disk, cfg);
  }

  /// Runs one committed single-update transaction.
  Status CommitUpdate(PageId page, uint32_t offset, std::string_view data) {
    Result<TxnId> txn = engine->Begin();
    if (!txn.ok()) return txn.status();
    Status st = engine->Update(*txn, page, offset, ToBytes(data));
    if (!st.ok()) return st;
    Status result = Status::Internal("pending");
    engine->Commit(*txn, [&](Status s) { result = s; });
    sim.Run();
    return result;
  }

  sim::Simulator sim;
  InMemoryTxnLogger logger;
  PageDisk disk;
  std::unique_ptr<TransactionEngine> engine;
};

TEST(EngineTest, CommitAppliesAndForces) {
  EngineFixture f;
  ASSERT_TRUE(f.CommitUpdate(0, 0, "hello").ok());
  EXPECT_EQ(f.engine->buffer_pool().Get(0).data[0], 'h');
  EXPECT_EQ(f.logger.forced_high(), f.logger.End());
  EXPECT_EQ(f.engine->commits().value(), 1u);
  EXPECT_EQ(f.engine->active_transactions(), 0u);
}

TEST(EngineTest, AbortRestoresOldImage) {
  EngineFixture f;
  ASSERT_TRUE(f.CommitUpdate(0, 0, "aaaa").ok());
  Result<TxnId> txn = f.engine->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(f.engine->Update(*txn, 0, 0, ToBytes("bbbb")).ok());
  EXPECT_EQ(f.engine->buffer_pool().Get(0).data[0], 'b');
  ASSERT_TRUE(f.engine->Abort(*txn).ok());
  EXPECT_EQ(f.engine->buffer_pool().Get(0).data[0], 'a');
  EXPECT_EQ(f.engine->aborts().value(), 1u);
}

TEST(EngineTest, RecoveryRedoesCommittedWork) {
  EngineFixture f;
  ASSERT_TRUE(f.CommitUpdate(2, 16, "durable!").ok());
  // Crash before any page was cleaned.
  f.engine->Crash();
  f.logger.Crash();

  EngineConfig cfg;
  TransactionEngine recovered(&f.sim, &f.logger, &f.disk, cfg);
  Status st = Status::Internal("pending");
  recovered.Recover([&](Status s) { st = s; });
  f.sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(recovered.buffer_pool().Get(2).data[16], 'd');
}

TEST(EngineTest, RecoveryUndoesUnfinishedWork) {
  EngineFixture f;
  ASSERT_TRUE(f.CommitUpdate(0, 0, "base").ok());
  // An unfinished transaction whose page got cleaned (so the disk image
  // contains uncommitted data).
  Result<TxnId> txn = f.engine->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(f.engine->Update(*txn, 0, 0, ToBytes("evil")).ok());
  bool cleaned = false;
  f.engine->CleanPages([&](Status s) {
    ASSERT_TRUE(s.ok());
    cleaned = true;
  });
  f.sim.Run();
  ASSERT_TRUE(cleaned);
  ASSERT_EQ(f.disk.Read(0).data[0], 'e');  // uncommitted data on disk

  f.engine->Crash();
  f.logger.Crash();
  EngineConfig cfg;
  TransactionEngine recovered(&f.sim, &f.logger, &f.disk, cfg);
  Status st = Status::Internal("pending");
  recovered.Recover([&](Status s) { st = s; });
  f.sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(recovered.buffer_pool().Get(0).data[0], 'b');  // undone
}

TEST(EngineTest, RecoveryReplaysAbortCompensation) {
  EngineFixture f;
  ASSERT_TRUE(f.CommitUpdate(0, 0, "good").ok());
  Result<TxnId> txn = f.engine->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(f.engine->Update(*txn, 0, 0, ToBytes("bad!")).ok());
  ASSERT_TRUE(f.engine->Abort(*txn).ok());
  // Force everything so the abort trail is durable.
  bool cleaned = false;
  f.engine->CleanPages([&](Status) { cleaned = true; });
  f.sim.Run();
  ASSERT_TRUE(cleaned);

  f.engine->Crash();
  f.logger.Crash();
  EngineConfig cfg;
  TransactionEngine recovered(&f.sim, &f.logger, &f.disk, cfg);
  Status st = Status::Internal("pending");
  recovered.Recover([&](Status s) { st = s; });
  f.sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(recovered.buffer_pool().Get(0).data[0], 'g');
}

TEST(EngineTest, SplitRecordsLogLessVolume) {
  EngineFixture plain(/*split=*/false);
  EngineFixture split(/*split=*/true);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(plain.CommitUpdate(0, 0, std::string(200, 'p')).ok());
    ASSERT_TRUE(split.CommitUpdate(0, 0, std::string(200, 's')).ok());
  }
  // Splitting avoids logging the undo images of committed transactions.
  EXPECT_LT(split.engine->log_bytes(), plain.engine->log_bytes());
  EXPECT_GT(split.engine->undo_bytes_cached(), 0u);
  EXPECT_EQ(split.engine->undo_bytes_logged(), 0u);  // nothing cleaned
}

TEST(EngineTest, SplitUndoFlushedWhenPageCleanedMidTransaction) {
  EngineFixture f(/*split=*/true);
  Result<TxnId> txn = f.engine->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(f.engine->Update(*txn, 0, 0, ToBytes("uncommitted")).ok());
  bool cleaned = false;
  f.engine->CleanPages([&](Status s) {
    ASSERT_TRUE(s.ok());
    cleaned = true;
  });
  f.sim.Run();
  ASSERT_TRUE(cleaned);
  EXPECT_GT(f.engine->undo_bytes_logged(), 0u);

  // Crash: recovery must undo using the logged undo component.
  f.engine->Crash();
  f.logger.Crash();
  EngineConfig cfg;
  cfg.split_records = true;
  TransactionEngine recovered(&f.sim, &f.logger, &f.disk, cfg);
  Status st = Status::Internal("pending");
  recovered.Recover([&](Status s) { st = s; });
  f.sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(recovered.buffer_pool().Get(0).data[0], 0);  // back to zero
}

TEST(EngineTest, UnforcedCommittedSuffixVanishesAtomically) {
  EngineFixture f;
  ASSERT_TRUE(f.CommitUpdate(0, 0, "kept").ok());
  // A transaction whose commit record was appended but never forced (we
  // bypass Commit to simulate the crash racing the force).
  Result<TxnId> txn = f.engine->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(f.engine->Update(*txn, 0, 0, ToBytes("gone")).ok());
  f.engine->Crash();
  f.logger.Crash();  // drops everything after the last force

  EngineConfig cfg;
  TransactionEngine recovered(&f.sim, &f.logger, &f.disk, cfg);
  Status st = Status::Internal("pending");
  recovered.Recover([&](Status s) { st = s; });
  f.sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(recovered.buffer_pool().Get(0).data[0], 'k');
}

// --- BankDb ---

struct BankFixture {
  explicit BankFixture(BankConfig bank_cfg = {}) : logger(&sim), disk(1024) {
    EngineConfig cfg;
    engine = std::make_unique<TransactionEngine>(&sim, &logger, &disk, cfg);
    bank = std::make_unique<BankDb>(engine.get(), bank_cfg);
  }

  Status Run(int account, int teller, int branch, int64_t delta) {
    Status result = Status::Internal("pending");
    bank->RunEt1(account, teller, branch, delta,
                 [&](Status s) { result = s; });
    sim.Run();
    return result;
  }

  sim::Simulator sim;
  InMemoryTxnLogger logger;
  PageDisk disk;
  std::unique_ptr<TransactionEngine> engine;
  std::unique_ptr<BankDb> bank;
};

TEST(BankTest, Et1UpdatesAllThreeBalances) {
  BankFixture f;
  ASSERT_TRUE(f.Run(5, 2, 1, 100).ok());
  EXPECT_EQ(f.bank->AccountBalance(5), 100);
  EXPECT_EQ(f.bank->TellerBalance(2), 100);
  EXPECT_EQ(f.bank->BranchBalance(1), 100);
  ASSERT_TRUE(f.Run(5, 2, 1, -30).ok());
  EXPECT_EQ(f.bank->AccountBalance(5), 70);
}

TEST(BankTest, Et1LogsSevenRecordsAbout700Bytes) {
  BankFixture f;
  const uint64_t records_before = f.engine->log_records();
  const uint64_t bytes_before = f.engine->log_bytes();
  ASSERT_TRUE(f.Run(1, 1, 1, 10).ok());
  EXPECT_EQ(f.engine->log_records() - records_before, 7u);
  const uint64_t bytes = f.engine->log_bytes() - bytes_before;
  EXPECT_GE(bytes, 600u);
  EXPECT_LE(bytes, 800u);
}

TEST(BankTest, AbortLeavesBalancesUntouched) {
  BankFixture f;
  ASSERT_TRUE(f.Run(3, 1, 0, 50).ok());
  ASSERT_TRUE(f.bank->RunEt1Abort(3, 1, 0, 999).ok());
  EXPECT_EQ(f.bank->AccountBalance(3), 50);
  EXPECT_EQ(f.bank->TellerBalance(1), 50);
  EXPECT_EQ(f.bank->BranchBalance(0), 50);
}

TEST(BankTest, InvariantHoldsAcrossCrashRecovery) {
  BankFixture f;
  BankConfig bank_cfg = f.bank->config();
  int64_t committed_total = 0;
  for (int i = 0; i < 30; ++i) {
    const int64_t delta = (i % 7) - 3;
    Status st = f.Run(i % bank_cfg.accounts, i % bank_cfg.tellers,
                      i % bank_cfg.branches, delta);
    ASSERT_TRUE(st.ok());
    committed_total += delta;
  }
  // Mid-flight transaction at crash time.
  Result<TxnId> txn = f.engine->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(f.engine->Update(*txn, 0, 0, ToBytes("torn")).ok());

  f.engine->Crash();
  f.logger.Crash();

  EngineConfig cfg;
  TransactionEngine recovered(&f.sim, &f.logger, &f.disk, cfg);
  Status st = Status::Internal("pending");
  recovered.Recover([&](Status s) { st = s; });
  f.sim.Run();
  ASSERT_TRUE(st.ok());

  BankDb bank_after(&recovered, bank_cfg);
  EXPECT_EQ(bank_after.TotalAccounts(), committed_total);
  EXPECT_EQ(bank_after.TotalTellers(), committed_total);
  EXPECT_EQ(bank_after.TotalBranches(), committed_total);
}

}  // namespace
}  // namespace dlog::tp
