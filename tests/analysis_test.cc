#include <gtest/gtest.h>

#include <cmath>

#include "analysis/availability.h"
#include "analysis/capacity.h"
#include "common/rng.h"

namespace dlog::analysis {
namespace {

TEST(AvailabilityTest, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 5), 252.0);
}

TEST(AvailabilityTest, AtMostKDownEdges) {
  EXPECT_DOUBLE_EQ(AtMostKDown(5, 5, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(AtMostKDown(5, -1, 0.3), 0.0);
  EXPECT_NEAR(AtMostKDown(1, 0, 0.05), 0.95, 1e-12);
}

// Section 3.2's headline numbers at p = 0.05.
TEST(AvailabilityTest, PaperNumbers) {
  const double p = 0.05;
  // Single server: everything available with probability 0.95.
  EXPECT_NEAR(WriteLogAvailability(1, 1, p), 0.95, 1e-12);
  EXPECT_NEAR(ClientInitAvailability(1, 1, p), 0.95, 1e-12);

  // N=2, M=5: WriteLog needs at least 2 of 5 up — "such failures will
  // hardly ever render WriteLog operations unavailable".
  EXPECT_GT(WriteLogAvailability(5, 2, p), 0.99995);
  // "four of the five log servers must be available for client
  // initialization. This occurs with a probability of about 0.98."
  EXPECT_NEAR(ClientInitAvailability(5, 2, p), 0.977, 0.002);

  // "With five log servers and triple copy replicated logs, availability
  // for both normal processing and client initialization is about 0.999."
  EXPECT_NEAR(WriteLogAvailability(5, 3, p), 0.9988, 0.0005);
  EXPECT_NEAR(ClientInitAvailability(5, 3, p), 0.9988, 0.0005);

  // "With dual copy replicated logs, 0.95 or better availability for
  // client initialization would be achieved using up to M = 7."
  EXPECT_GE(ClientInitAvailability(7, 2, p), 0.95);
  EXPECT_LT(ClientInitAvailability(8, 2, p), 0.95);

  // Reading a record on N servers: 1 - p^N.
  EXPECT_NEAR(ReadAvailability(2, p), 1 - 0.0025, 1e-12);
  EXPECT_NEAR(ReadAvailability(3, p), 1 - 0.000125, 1e-12);
}

TEST(AvailabilityTest, WriteAvailabilityRisesWithM) {
  const double p = 0.05;
  double prev = 0;
  for (int m = 2; m <= 10; ++m) {
    const double a = WriteLogAvailability(m, 2, p);
    EXPECT_GE(a, prev);
    prev = a;
  }
  EXPECT_GT(prev, 0.9999999);
}

TEST(AvailabilityTest, InitAvailabilityFallsWithM) {
  const double p = 0.05;
  double prev = 1.0;
  for (int m = 2; m <= 10; ++m) {
    const double a = ClientInitAvailability(m, 2, p);
    EXPECT_LE(a, prev + 1e-12);
    prev = a;
  }
}

TEST(AvailabilityTest, GeneratorAvailabilityMatchesFormula) {
  const double p = 0.05;
  // N=3: majority 2 must be up: at most 1 down.
  const double expected =
      std::pow(0.95, 3) + 3 * 0.05 * std::pow(0.95, 2);
  EXPECT_NEAR(GeneratorAvailability(3, p), expected, 1e-12);
  // Even N adds no fault tolerance over N-1.
  EXPECT_NEAR(GeneratorAvailability(4, p),
              AtMostKDown(4, 1, p), 1e-12);
}

// Monte-Carlo cross-validation of all three formulas.
TEST(AvailabilityTest, MonteCarloAgreesWithClosedForm) {
  Rng rng(42);
  const double p = 0.05;
  const int m = 5, n = 2;
  const int kTrials = 200000;
  int write_ok = 0, init_ok = 0, read_ok = 0;
  for (int t = 0; t < kTrials; ++t) {
    int down = 0;
    // The N holders of a given record are a fixed subset; count their
    // failures separately from the total.
    int holder_down = 0;
    for (int i = 0; i < m; ++i) {
      const bool is_down = rng.Bernoulli(p);
      if (is_down) {
        ++down;
        if (i < n) ++holder_down;
      }
    }
    if (down <= m - n) ++write_ok;
    if (down <= n - 1) ++init_ok;
    if (holder_down < n) ++read_ok;
  }
  EXPECT_NEAR(static_cast<double>(write_ok) / kTrials,
              WriteLogAvailability(m, n, p), 0.002);
  EXPECT_NEAR(static_cast<double>(init_ok) / kTrials,
              ClientInitAvailability(m, n, p), 0.002);
  EXPECT_NEAR(static_cast<double>(read_ok) / kTrials,
              ReadAvailability(n, p), 0.002);
}

// --- Capacity model (Section 4.1) ---

TEST(CapacityTest, PaperTargetLoad) {
  CapacityInputs in;  // defaults are the paper's 500 TPS configuration
  CapacityOutputs out = ComputeCapacity(in);

  EXPECT_DOUBLE_EQ(out.system_tps, 500.0);
  // "about 2400 incoming or outgoing messages per second".
  EXPECT_NEAR(out.msgs_per_sec_per_server_unbatched, 2400, 150);
  // "each server must process about 170 RPCs per second".
  EXPECT_NEAR(out.rpcs_per_sec_per_server_batched, 170, 10);
  // "around seven million total bits per second".
  EXPECT_NEAR(out.network_bits_per_sec / 1e6, 7.0, 1.5);
  // Multicast roughly halves it.
  EXPECT_LT(out.network_bits_per_sec_multicast,
            0.65 * out.network_bits_per_sec);
  // "communication processing will consume less than ten percent".
  EXPECT_LT(out.cpu_fraction_comm, 0.10);
  // "only ten to twenty percent of a log server's CPU capacity will be
  // used for writing log records to non volatile storage".
  EXPECT_GT(out.cpu_fraction_logging, 0.02);
  EXPECT_LT(out.cpu_fraction_logging, 0.20);
  // "approximately ten billion bytes of log data ... per day".
  EXPECT_NEAR(out.bytes_per_server_per_day / 1e9, 10.0, 1.0);
}

TEST(CapacityTest, GroupingReducesMessagesSevenfold) {
  CapacityInputs in;
  CapacityOutputs out = ComputeCapacity(in);
  // Grouping seven records into one call: ~7x fewer messages. The
  // unbatched figure counts request+reply, the batched one counts calls,
  // so compare call rates.
  const double unbatched_calls = out.msgs_per_sec_per_server_unbatched / 2;
  EXPECT_NEAR(unbatched_calls / out.rpcs_per_sec_per_server_batched, 7.0,
              0.01);
}

TEST(CapacityTest, DiskUtilizationDependsOnTrackSize) {
  CapacityInputs small;
  small.disk_track_bytes = 8 * 1024;
  CapacityInputs large;
  large.disk_track_bytes = 32 * 1024;
  EXPECT_GT(ComputeCapacity(small).disk_utilization,
            ComputeCapacity(large).disk_utilization);
  // "Disk utilization will be higher, close to fifty percent for slow
  // disks with small tracks."
  CapacityInputs slow;
  slow.disk_track_bytes = 8 * 1024;
  slow.disk_rpm = 3000;
  EXPECT_GT(ComputeCapacity(slow).disk_utilization, 0.30);
  EXPECT_LT(ComputeCapacity(slow).disk_utilization, 0.60);
}

TEST(CapacityTest, ReportMentionsKeyRows) {
  CapacityInputs in;
  const std::string report = CapacityReport(in, ComputeCapacity(in));
  EXPECT_NE(report.find("RPCs/server"), std::string::npos);
  EXPECT_NE(report.find("network load"), std::string::npos);
  EXPECT_NE(report.find("disk utilization"), std::string::npos);
}

}  // namespace
}  // namespace dlog::analysis
