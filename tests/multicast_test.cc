// Tests for the Section 4.1 multicast option: record batches travel once
// to a multicast group instead of N unicast copies.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/cluster.h"

namespace dlog {
namespace {

using client::LogClientConfig;
using harness::Cluster;
using harness::ClusterConfig;

Status InitClient(Cluster& cluster, client::LogClient& c) {
  Status result = Status::Internal("never");
  bool done = false;
  c.Init([&](Status st) {
    result = st;
    done = true;
  });
  cluster.RunUntil([&]() { return done; });
  return result;
}

Result<Lsn> WriteForced(Cluster& cluster, client::LogClient& c,
                        const std::string& data) {
  Result<Lsn> lsn = c.WriteLog(ToBytes(data));
  if (!lsn.ok()) return lsn;
  bool done = false;
  Status st = Status::Internal("never");
  c.ForceLog(*lsn, [&](Status s) {
    st = s;
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; }, 60 * sim::kSecond)) {
    return Status::TimedOut("force");
  }
  if (!st.ok()) return st;
  return lsn;
}

LogClientConfig McastConfig() {
  LogClientConfig cfg;
  cfg.client_id = 1;
  cfg.multicast_writes = true;
  return cfg;
}

TEST(MulticastTest, RecordsReachAllWriteSetServers) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient(McastConfig());
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(WriteForced(cluster, *c, "m" + std::to_string(i)).ok());
  }
  for (Lsn lsn = 1; lsn <= 10; ++lsn) {
    int holders = 0;
    for (int s = 1; s <= 3; ++s) {
      for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
        if (r.lsn == lsn && r.present) {
          ++holders;
          break;
        }
      }
    }
    EXPECT_EQ(holders, 2) << "LSN " << lsn;
  }
}

TEST(MulticastTest, ReadBackMatches) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient(McastConfig());
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  std::map<Lsn, std::string> written;
  for (int i = 0; i < 20; ++i) {
    const std::string data = "payload-" + std::to_string(i);
    Result<Lsn> lsn = WriteForced(cluster, *c, data);
    ASSERT_TRUE(lsn.ok());
    written[*lsn] = data;
  }
  for (const auto& [lsn, data] : written) {
    Result<Bytes> r = Status::Internal("never");
    bool done = false;
    c->ReadLog(lsn, [&](Result<Bytes> got) {
      r = std::move(got);
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(ToString(*r), data);
  }
}

TEST(MulticastTest, HalvesDataTrafficVersusUnicast) {
  auto run = [](bool multicast) {
    ClusterConfig cluster_cfg;
    Cluster cluster(cluster_cfg);
    LogClientConfig cfg;
    cfg.client_id = 1;
    cfg.multicast_writes = multicast;
    auto c = cluster.AddClient(cfg);
    EXPECT_TRUE(InitClient(cluster, *c).ok());
    const uint64_t bits_before = cluster.network().bits_sent();
    for (int i = 0; i < 40; ++i) {
      // 7 buffered records then a force: the ET1 grouping pattern.
      Lsn last = kNoLsn;
      for (int j = 0; j < 7; ++j) {
        auto lsn = c->WriteLog(Bytes(100, 'x'));
        EXPECT_TRUE(lsn.ok());
        last = *lsn;
      }
      bool done = false;
      c->ForceLog(last, [&](Status st) {
        EXPECT_TRUE(st.ok());
        done = true;
      });
      EXPECT_TRUE(cluster.RunUntil([&]() { return done; }));
    }
    return cluster.network().bits_sent() - bits_before;
  };
  const uint64_t unicast_bits = run(false);
  const uint64_t multicast_bits = run(true);
  // The record stream dominates; multicast sends it once instead of
  // twice, so total traffic drops by roughly the data share (paper:
  // "approximately halved").
  EXPECT_LT(multicast_bits, 0.70 * unicast_bits);
  EXPECT_GT(multicast_bits, 0.40 * unicast_bits);
}

TEST(MulticastTest, SurvivesWriteSetServerDeath) {
  ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 4;
  Cluster cluster(cluster_cfg);
  LogClientConfig cfg = McastConfig();
  cfg.force_timeout = 100 * sim::kMillisecond;
  cfg.force_retries = 2;
  auto c = cluster.AddClient(cfg);
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  ASSERT_TRUE(WriteForced(cluster, *c, "warmup").ok());

  // Kill a holder of LSN 1.
  int victim = 0;
  for (int s = 1; s <= 4 && victim == 0; ++s) {
    for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
      if (r.lsn == 1) victim = s;
    }
  }
  ASSERT_NE(victim, 0);
  cluster.server(victim).Crash();

  Result<Lsn> lsn = WriteForced(cluster, *c, "survives");
  ASSERT_TRUE(lsn.ok());
  int holders = 0;
  for (int s = 1; s <= 4; ++s) {
    if (s == victim) continue;
    for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
      if (r.lsn == *lsn && r.present) {
        ++holders;
        break;
      }
    }
  }
  EXPECT_GE(holders, 2);
}

TEST(MulticastTest, ClientRestartRecoversMulticastHistory) {
  Cluster cluster(ClusterConfig{});
  {
    auto c = cluster.AddClient(McastConfig());
    ASSERT_TRUE(InitClient(cluster, *c).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(WriteForced(cluster, *c, "h" + std::to_string(i)).ok());
    }
    c->Crash();
  }
  LogClientConfig cfg = McastConfig();
  cfg.node_id = 2000;
  auto c2 = cluster.AddClient(cfg);
  ASSERT_TRUE(InitClient(cluster, *c2).ok());
  for (Lsn lsn = 1; lsn <= 5; ++lsn) {
    Result<Bytes> r = Status::Internal("never");
    bool done = false;
    c2->ReadLog(lsn, [&](Result<Bytes> got) {
      r = std::move(got);
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
    ASSERT_TRUE(r.ok()) << "lsn " << lsn;
    EXPECT_EQ(ToString(*r), "h" + std::to_string(lsn - 1));
  }
}

}  // namespace
}  // namespace dlog
