// Focused unit tests of LogClient behaviours that the system tests only
// exercise incidentally: the δ bound, grouping thresholds, policies,
// read caching, and crash semantics.

#include <gtest/gtest.h>

#include <memory>

#include "harness/cluster.h"

namespace dlog {
namespace {

using client::LogClientConfig;
using client::SelectionPolicy;
using harness::Cluster;
using harness::ClusterConfig;

Status InitSync(Cluster& cluster, client::LogClient& c) {
  Status result = Status::Internal("never");
  bool done = false;
  c.Init([&](Status st) {
    result = st;
    done = true;
  });
  cluster.RunUntil([&]() { return done; });
  return result;
}

TEST(LogClientTest, WriteBeforeInitFails) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  EXPECT_EQ(c->WriteLog(ToBytes("x")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LogClientTest, CrashedClientRejectsEverything) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitSync(cluster, *c).ok());
  c->Crash();
  EXPECT_TRUE(c->WriteLog(ToBytes("x")).status().IsAborted());
  bool done = false;
  Status st;
  c->ForceLog(1, [&](Status s) {
    st = s;
    done = true;
  });
  cluster.RunUntil([&]() { return done; });
  EXPECT_FALSE(st.ok());
}

TEST(LogClientTest, DeltaBoundThrottlesUnackedSends) {
  // With all servers shedding (tiny NVRAM), sends stall at δ records even
  // though many more are buffered and forced.
  ClusterConfig cluster_cfg;
  cluster_cfg.server.nvram_bytes = 1;  // every write shed
  Cluster cluster(cluster_cfg);
  LogClientConfig cfg;
  cfg.client_id = 1;
  cfg.delta = 4;
  cfg.force_timeout = 100 * sim::kMillisecond;
  cfg.force_retries = 1000;  // never switch (everyone sheds anyway)
  auto c = cluster.AddClient(cfg);
  ASSERT_TRUE(InitSync(cluster, *c).ok());

  Lsn last = kNoLsn;
  for (int i = 0; i < 20; ++i) {
    auto lsn = c->WriteLog(ToBytes("r"));
    ASSERT_TRUE(lsn.ok());
    last = *lsn;
  }
  bool done = false;
  c->ForceLog(last, [&](Status) { done = true; });
  cluster.sim().RunFor(3 * sim::kSecond);
  EXPECT_FALSE(done);  // nothing can be acked
  // At most δ distinct records were ever handed to the transport.
  EXPECT_LE(c->records_sent().value(), 2u * 4u * 10u);  // δ x N x retries
  // The δ invariant exactly: no more than δ records partially written.
  uint64_t distinct_sent = 0;
  for (int s = 1; s <= cluster.num_servers(); ++s) {
    distinct_sent =
        std::max<uint64_t>(distinct_sent,
                           cluster.server(s).RecordsOf(1).size());
  }
  EXPECT_LE(distinct_sent, 4u);
}

TEST(LogClientTest, UnforcedSmallWritesStayBuffered) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitSync(cluster, *c).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(c->WriteLog(ToBytes("small")).ok());
  }
  cluster.sim().RunFor(2 * sim::kSecond);
  EXPECT_EQ(c->records_sent().value(), 0u);  // grouping: nothing forced
  EXPECT_GT(c->bytes_buffered(), 0u);
}

TEST(LogClientTest, FullPacketTriggersSendWithoutForce) {
  Cluster cluster(ClusterConfig{});
  LogClientConfig cfg;
  cfg.client_id = 1;
  cfg.mtu_payload = 600;
  auto c = cluster.AddClient(cfg);
  ASSERT_TRUE(InitSync(cluster, *c).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(c->WriteLog(Bytes(200, 'x')).ok());
  }
  cluster.sim().RunFor(2 * sim::kSecond);
  EXPECT_GT(c->records_sent().value(), 0u);  // a full packet went out
}

TEST(LogClientTest, EndOfLogCountsBufferedRecords) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitSync(cluster, *c).ok());
  EXPECT_EQ(c->EndOfLog(), kNoLsn);
  ASSERT_TRUE(c->WriteLog(ToBytes("a")).ok());
  ASSERT_TRUE(c->WriteLog(ToBytes("b")).ok());
  EXPECT_EQ(c->EndOfLog(), 2u);
}

TEST(LogClientTest, ReadCacheServesPackedNeighbors) {
  Cluster cluster(ClusterConfig{});
  auto c = cluster.AddClient();
  ASSERT_TRUE(InitSync(cluster, *c).ok());
  Lsn last = kNoLsn;
  for (int i = 0; i < 10; ++i) {
    auto lsn = c->WriteLog(ToBytes("n" + std::to_string(i)));
    last = *lsn;
  }
  bool done = false;
  c->ForceLog(last, [&](Status) { done = true; });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));

  // First read fetches a packed batch...
  done = false;
  c->ReadLog(1, [&](Result<Bytes> r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  uint64_t rpcs_after_first = 0;
  for (int s = 1; s <= 3; ++s) {
    rpcs_after_first += cluster.server(s).read_rpcs().value();
  }
  // ...so the following reads hit the client cache: no further RPCs.
  for (Lsn lsn = 2; lsn <= 5; ++lsn) {
    done = false;
    c->ReadLog(lsn, [&](Result<Bytes> r) {
      EXPECT_TRUE(r.ok());
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  }
  uint64_t rpcs_after_all = 0;
  for (int s = 1; s <= 3; ++s) {
    rpcs_after_all += cluster.server(s).read_rpcs().value();
  }
  EXPECT_EQ(rpcs_after_all, rpcs_after_first);
}

TEST(LogClientTest, RoundRobinPolicySpreadsInitialSets) {
  ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 6;
  Cluster cluster(cluster_cfg);
  // Several round-robin clients: every server should store something.
  std::vector<harness::ClientHandle> clients;
  for (int i = 0; i < 6; ++i) {
    LogClientConfig cfg;
    cfg.client_id = static_cast<ClientId>(i + 1);
    cfg.policy = SelectionPolicy::kRoundRobin;
    clients.push_back(cluster.AddClient(cfg));
    ASSERT_TRUE(InitSync(cluster, *clients.back()).ok());
    Lsn lsn = *clients.back()->WriteLog(ToBytes("x"));
    bool done = false;
    clients.back()->ForceLog(lsn, [&](Status) { done = true; });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  }
  int servers_used = 0;
  for (int s = 1; s <= 6; ++s) {
    uint64_t records = cluster.server(s).records_written().value();
    if (records > 0) ++servers_used;
  }
  EXPECT_GE(servers_used, 4);
}

TEST(LogClientTest, InitUnavailableWithTooFewServers) {
  ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 5;
  Cluster cluster(cluster_cfg);
  // N=2, M=5 needs 4 interval lists; take 2 servers down.
  cluster.server(1).Crash();
  cluster.server(2).Crash();
  LogClientConfig cfg;
  cfg.client_id = 1;
  cfg.rpc_timeout = 100 * sim::kMillisecond;
  cfg.rpc_attempts = 2;
  auto c = cluster.AddClient(cfg);
  Status st = InitSync(cluster, *c);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  // Bring one back: init succeeds on retry.
  cluster.server(1).Restart();
  EXPECT_TRUE(InitSync(cluster, *c).ok());
}

TEST(LogClientTest, GeneratorQuorumBlocksInit) {
  ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 5;
  Cluster cluster(cluster_cfg);
  LogClientConfig cfg;
  cfg.client_id = 1;
  // Generator representatives on servers 1-3; kill 2 of them. Interval
  // lists are still gatherable (4 of 5 up), but no epoch is issuable.
  cfg.generator_reps = {1, 2, 3};
  cfg.rpc_timeout = 100 * sim::kMillisecond;
  cfg.rpc_attempts = 2;
  cluster.server(1).Crash();
  cluster.server(2).Crash();
  auto c = cluster.AddClient(cfg);
  Status st = InitSync(cluster, *c);
  EXPECT_TRUE(st.IsUnavailable());
}

}  // namespace
}  // namespace dlog
