// Property-based tests: randomized inputs checked against brute-force
// oracles, parameterized over the design space (M, N, loss rates, sizes).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "client/log_server_stub.h"
#include "client/replicated_log.h"
#include "common/log_types.h"
#include "common/rng.h"
#include "epoch/id_generator.h"
#include "forest/append_forest.h"

namespace dlog {
namespace {

// --- MergedLogView vs. a brute-force per-LSN oracle ---

struct MergeCase {
  uint64_t seed;
  int servers;
  int intervals_per_server;
};

class MergedViewProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MergedViewProperty, MatchesBruteForceOracle) {
  const auto [seed, servers, per_server] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919);

  std::vector<ServerInterval> intervals;
  constexpr Lsn kMaxLsn = 60;
  for (int s = 1; s <= servers; ++s) {
    for (int i = 0; i < per_server; ++i) {
      Interval iv;
      iv.low = 1 + rng.NextBelow(kMaxLsn);
      iv.high = iv.low + rng.NextBelow(10);
      iv.epoch = 1 + rng.NextBelow(5);
      intervals.push_back({static_cast<ServerId>(s), iv});
    }
  }
  MergedLogView view = MergedLogView::Build(intervals);

  // Brute force: for every LSN, the winning epoch and its holder set.
  std::optional<Lsn> oracle_high;
  for (Lsn lsn = 1; lsn <= kMaxLsn + 12; ++lsn) {
    Epoch best = 0;
    std::set<ServerId> holders;
    for (const ServerInterval& si : intervals) {
      if (!si.interval.Contains(lsn)) continue;
      if (si.interval.epoch > best) {
        best = si.interval.epoch;
        holders.clear();
      }
      if (si.interval.epoch == best) holders.insert(si.server);
    }
    const MergedLogView::Segment* seg = view.Find(lsn);
    if (holders.empty()) {
      EXPECT_EQ(seg, nullptr) << "lsn " << lsn;
      continue;
    }
    oracle_high = lsn;
    ASSERT_NE(seg, nullptr) << "lsn " << lsn;
    EXPECT_EQ(seg->epoch, best) << "lsn " << lsn;
    EXPECT_EQ(std::set<ServerId>(seg->servers.begin(), seg->servers.end()),
              holders)
        << "lsn " << lsn;
  }
  EXPECT_EQ(view.HighLsn(), oracle_high);

  // Segments are sorted, non-overlapping, non-empty.
  Lsn prev_high = 0;
  for (const auto& seg : view.segments()) {
    EXPECT_GT(seg.low, prev_high);
    EXPECT_GE(seg.high, seg.low);
    EXPECT_FALSE(seg.servers.empty());
    prev_high = seg.high;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergedViewProperty,
    ::testing::Combine(::testing::Range(1, 11),      // seeds
                       ::testing::Values(1, 3, 6),   // servers
                       ::testing::Values(1, 4, 8))); // intervals/server

// --- NoteWrite incremental maintenance vs. rebuild oracle ---

TEST(MergedViewNoteWriteProperty, AgreesWithRebuild) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 31);
    MergedLogView incremental;
    std::vector<ServerInterval> history;
    Lsn high = 0;
    Epoch epoch = 1;
    for (int step = 0; step < 60; ++step) {
      if (rng.NextBelow(10) == 0) ++epoch;  // client restart
      const Lsn lsn =
          rng.NextBelow(8) == 0 && high > 0 ? high : high + 1;  // re-copy
      high = std::max(high, lsn);
      std::vector<ServerId> servers;
      const int n = 2 + static_cast<int>(rng.NextBelow(2));
      while (static_cast<int>(servers.size()) < n) {
        const ServerId s = 1 + rng.NextBelow(5);
        if (std::find(servers.begin(), servers.end(), s) == servers.end()) {
          servers.push_back(s);
        }
      }
      incremental.NoteWrite(lsn, epoch, servers);
      for (ServerId s : servers) {
        history.push_back({s, Interval{epoch, lsn, lsn}});
      }
      if (step % 10 == 9) {
        MergedLogView rebuilt = MergedLogView::Build(history);
        for (Lsn q = 1; q <= high; ++q) {
          const auto* a = incremental.Find(q);
          const auto* b = rebuilt.Find(q);
          ASSERT_EQ(a == nullptr, b == nullptr) << "seed " << seed;
          if (a != nullptr) {
            EXPECT_EQ(a->epoch, b->epoch) << "seed " << seed << " lsn " << q;
            EXPECT_EQ(a->servers, b->servers)
                << "seed " << seed << " lsn " << q;
          }
        }
      }
    }
  }
}

// --- ReplicatedLog crash-recovery property across the (M, N) grid ---

class ReplicatedLogGridProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReplicatedLogGridProperty, CommittedRecordsSurviveAnything) {
  const auto [m, n, seed] = GetParam();
  if (n > m) GTEST_SKIP();
  Rng rng(static_cast<uint64_t>(seed) * 997 + m * 31 + n);

  std::vector<std::unique_ptr<client::InMemoryLogServerStub>> servers;
  std::vector<client::LogServerStub*> raw;
  for (int i = 1; i <= m; ++i) {
    servers.push_back(std::make_unique<client::InMemoryLogServerStub>(i));
    raw.push_back(servers.back().get());
  }
  std::vector<std::unique_ptr<epoch::GeneratorStateRep>> reps;
  std::vector<epoch::GeneratorStateRep*> raw_reps;
  for (int i = 0; i < 3; ++i) {
    reps.push_back(std::make_unique<epoch::GeneratorStateRep>());
    raw_reps.push_back(reps.back().get());
  }
  epoch::ReplicatedIdGenerator generator(raw_reps);

  client::ReplicatedLog::Options opts;
  opts.copies = n;
  auto log = std::make_unique<client::ReplicatedLog>(1, raw, &generator,
                                                     opts);
  ASSERT_TRUE(log->Init().ok());

  std::map<Lsn, Bytes> committed;
  for (int step = 0; step < 60; ++step) {
    const uint64_t dice = rng.NextBelow(10);
    if (dice < 6) {
      Bytes data = ToBytes("d" + std::to_string(step));
      Result<Lsn> lsn = log->WriteLog(data);
      if (lsn.ok()) committed[*lsn] = data;
    } else if (dice < 8) {
      (void)log->WriteLogCrashAfter(ToBytes("torn"),
                                    static_cast<int>(rng.NextBelow(n)));
      for (auto& s : servers) s->SetAvailable(true);
      log = std::make_unique<client::ReplicatedLog>(1, raw, &generator,
                                                    opts);
      ASSERT_TRUE(log->Init().ok());
    } else {
      // Flip a server, keeping at least N up.
      int up = 0;
      for (auto& s : servers) up += s->IsAvailable() ? 1 : 0;
      auto& victim = servers[rng.NextBelow(servers.size())];
      if (victim->IsAvailable() && up > n) {
        victim->SetAvailable(false);
      } else {
        victim->SetAvailable(true);
      }
    }
    if (!log->initialized()) {
      for (auto& s : servers) s->SetAvailable(true);
      ASSERT_TRUE(log->Init().ok());
    }
  }

  for (auto& s : servers) s->SetAvailable(true);
  log = std::make_unique<client::ReplicatedLog>(1, raw, &generator, opts);
  ASSERT_TRUE(log->Init().ok());
  for (const auto& [lsn, data] : committed) {
    Result<Bytes> r = log->ReadLog(lsn);
    ASSERT_TRUE(r.ok()) << "M=" << m << " N=" << n << " lsn " << lsn
                        << ": " << r.status().ToString();
    EXPECT_EQ(*r, data);
  }
  // Each committed record is on at least N servers (full replication is
  // restored by recovery for any record recovery touched; all others
  // were written to N servers to begin with).
  for (const auto& [lsn, data] : committed) {
    int holders = 0;
    for (auto& s : servers) {
      Result<LogRecord> rec = s->store(1).Read(lsn);
      if (rec.ok() && rec->present) ++holders;
    }
    EXPECT_GE(holders, n) << "lsn " << lsn;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ReplicatedLogGridProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5, 7),
                                            ::testing::Values(2, 3),
                                            ::testing::Range(1, 6)));

// --- Append forest: random range widths, every key findable ---

class ForestRangeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForestRangeProperty, RandomRangesIndexEveryKey) {
  Rng rng(GetParam());
  forest::AppendForest forest;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (high, value)
  uint64_t next_key = 1;
  for (int i = 0; i < 400; ++i) {
    const uint64_t width = 1 + rng.NextBelow(50);
    const uint64_t low = next_key;
    const uint64_t high = low + width - 1;
    ASSERT_TRUE(forest.Append(low, high, i).ok());
    ranges.push_back({high, static_cast<uint64_t>(i)});
    next_key = high + 1;
  }
  ASSERT_TRUE(forest.CheckInvariants().ok());
  // Probe a sample of keys; the owning node is the first range whose
  // high >= key.
  for (uint64_t key = 1; key < next_key; key += 1 + rng.NextBelow(17)) {
    auto it = std::lower_bound(
        ranges.begin(), ranges.end(), key,
        [](const auto& r, uint64_t k) { return r.first < k; });
    ASSERT_NE(it, ranges.end());
    Result<forest::AppendForest::Node> node = forest.Find(key);
    ASSERT_TRUE(node.ok()) << "key " << key;
    EXPECT_EQ(node->value, it->second) << "key " << key;
  }
  EXPECT_TRUE(forest.Find(next_key).status().IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestRangeProperty,
                         ::testing::Range<uint64_t>(1, 9));

// --- Identifier generator: interleaved generators share representatives ---

TEST(IdGeneratorProperty, TwoGeneratorsOverSameRepsStayMonotone) {
  // The paper permits one client process at a time; sequential use of
  // two generator objects over the same representatives (a client
  // restarting with fresh state) must still yield increasing ids.
  std::vector<std::unique_ptr<epoch::GeneratorStateRep>> reps;
  std::vector<epoch::GeneratorStateRep*> raw;
  for (int i = 0; i < 5; ++i) {
    reps.push_back(std::make_unique<epoch::GeneratorStateRep>());
    raw.push_back(reps.back().get());
  }
  uint64_t last = 0;
  for (int life = 0; life < 10; ++life) {
    epoch::ReplicatedIdGenerator generator(raw);  // fresh client state
    for (int i = 0; i < 5; ++i) {
      Result<uint64_t> id = generator.NewId();
      ASSERT_TRUE(id.ok());
      EXPECT_GT(*id, last);
      last = *id;
    }
  }
}

}  // namespace
}  // namespace dlog
