// Tests of the critical-path profiler and resource-attribution layer:
// timeline bookkeeping, hand-built critical-path/slack extraction, the
// exact-summation contract of ForceLog latency attribution (including
// the ack-after-disk ablation where the disk phases are nonzero), the
// closed-form cross-check of measured utilizations, and byte-for-byte
// determinism of every profiler artifact under an active fault plan.

#include <cinttypes>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/capacity.h"
#include "chaos/fault_plan.h"
#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace dlog {
namespace {

Status InitClient(harness::Cluster& cluster, client::LogClient& log) {
  Status result = Status::Internal("pending");
  bool done = false;
  log.Init([&](Status st) {
    result = st;
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::Internal("Init did not complete");
  }
  return result;
}

Status ForceAll(harness::Cluster& cluster, client::LogClient& log,
                Lsn lsn) {
  Status result = Status::Internal("pending");
  bool done = false;
  log.ForceLog(lsn, [&](Status st) {
    result = st;
    done = true;
  });
  if (!cluster.RunUntil([&]() { return done; })) {
    return Status::Internal("ForceLog did not complete");
  }
  return result;
}

// --- timelines ---

TEST(UtilizationTimelineTest, MergesContiguousAndClipsWindows) {
  obs::UtilizationTimeline t;
  t.AddBusy(10, 20);
  t.AddBusy(20, 30);  // contiguous: merged
  t.AddBusy(50, 60);
  ASSERT_EQ(t.intervals().size(), 2u);
  EXPECT_EQ(t.intervals()[0].start, 10u);
  EXPECT_EQ(t.intervals()[0].end, 30u);

  EXPECT_EQ(t.BusyTime(0, 100), 30u);
  EXPECT_EQ(t.BusyTime(15, 55), 20u);  // clipped at both edges
  EXPECT_DOUBLE_EQ(t.Utilization(0, 100), 0.30);
  EXPECT_DOUBLE_EQ(t.Utilization(30, 50), 0.0);
  EXPECT_DOUBLE_EQ(t.Utilization(5, 5), 0.0);  // empty window
  t.AddBusy(70, 70);                           // zero-length: ignored
  EXPECT_EQ(t.intervals().size(), 2u);
}

TEST(LevelTimelineTest, TimeWeightedAverageAndMax) {
  obs::LevelTimeline t;
  t.Set(10, 100.0);
  t.Set(20, 300.0);
  t.Set(20, 200.0);  // same instant: overwritten
  // Level is 0 before the first point: [0,10)=0, [10,20)=100, [20,40)=200.
  EXPECT_DOUBLE_EQ(t.Average(0, 40), (0 * 10 + 100 * 10 + 200 * 20) / 40.0);
  EXPECT_DOUBLE_EQ(t.Average(10, 20), 100.0);
  EXPECT_DOUBLE_EQ(t.Max(), 300.0);  // max tracks every Set, even overwritten
}

// --- critical paths ---

TEST(CriticalPathTest, HandBuiltTreeFindsGatingChainAndSlack) {
  sim::Simulator sim;
  obs::Tracer tracer(&sim);
  // root [0,100]; childA [0,40]; childB [10,90] with grand [20,85].
  obs::SpanContext root = tracer.StartTrace("txn", "client-1");
  obs::SpanContext a = tracer.StartSpan("wal.group", "client-1", root);
  sim.RunFor(10);
  obs::SpanContext b = tracer.StartSpan("wire.send", "client-1", root);
  sim.RunFor(10);
  obs::SpanContext g = tracer.StartSpan("track.write", "server-2", b);
  sim.RunFor(20);  // t=40
  tracer.EndSpan(a);
  sim.RunFor(45);  // t=85
  tracer.EndSpan(g);
  sim.RunFor(5);  // t=90
  tracer.EndSpan(b);
  sim.RunFor(10);  // t=100
  tracer.EndSpan(root);

  std::vector<obs::CriticalPath> paths =
      obs::ExtractCriticalPaths(tracer);
  ASSERT_EQ(paths.size(), 1u);
  const obs::CriticalPath& p = paths[0];
  EXPECT_EQ(p.start, 0u);
  EXPECT_EQ(p.end, 100u);
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].name, "txn");
  EXPECT_EQ(p.steps[0].self, 10u);  // 100 - childB end 90
  EXPECT_EQ(p.steps[1].name, "wire.send");
  EXPECT_EQ(p.steps[1].self, 5u);  // 90 - grand end 85
  EXPECT_EQ(p.steps[2].name, "track.write");
  EXPECT_EQ(p.steps[2].self, 65u);  // leaf: 85 - 20
  // Self times telescope to the root's full duration.
  uint64_t total = 0;
  for (const obs::PathStep& s : p.steps) total += s.self;
  EXPECT_EQ(total, 80u);  // root.end - leaf.start = 100 - 20

  ASSERT_EQ(p.off_path.size(), 1u);
  EXPECT_EQ(p.off_path[0].name, "wal.group");
  // Gated by sibling childB finishing at 90; childA ended at 40.
  EXPECT_EQ(p.off_path[0].slack, 50u);

  const std::string text = obs::CriticalPathText(paths);
  EXPECT_NE(text.find("track.write"), std::string::npos);
  EXPECT_NE(text.find("slack"), std::string::npos);
}

TEST(CriticalPathTest, OpenRootsAreSkipped) {
  sim::Simulator sim;
  obs::Tracer tracer(&sim);
  tracer.StartTrace("txn", "client-1");  // never closed
  EXPECT_TRUE(obs::ExtractCriticalPaths(tracer).empty());
}

// --- ForceLog latency attribution ---

TEST(AttributionTest, ComponentNamesAreStableAndOrdered) {
  const std::vector<std::string>& names = obs::AttributionComponents();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "client.cpu");
  EXPECT_EQ(names.back(), "ack.return");
}

/// Every attribution's components must be non-negative, emitted in the
/// canonical order, and sum exactly (integer nanoseconds, no epsilon)
/// to the ForceLog span's duration.
void CheckExactSummation(const std::vector<obs::Profiler::Attribution>& attrs) {
  const std::vector<std::string>& names = obs::AttributionComponents();
  for (const obs::Profiler::Attribution& attr : attrs) {
    ASSERT_EQ(attr.components.size(), names.size());
    sim::Duration sum = 0;
    for (size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(attr.components[i].first, names[i]);
      EXPECT_GE(attr.components[i].second, 0u);
      sum += attr.components[i].second;
    }
    EXPECT_EQ(sum, attr.end - attr.start)
        << "components must sum exactly to the span duration";
  }
}

TEST(AttributionTest, ComponentsSumExactlyOnEt1Workload) {
  harness::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.tracing = true;
  cfg.profiling = true;
  harness::Cluster cluster(cfg);
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < 2; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.seed = 40 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }
  cluster.sim().RunFor(2 * sim::kSecond);

  const std::vector<obs::Profiler::Attribution> attrs =
      cluster.profiler().AttributeForces(cluster.tracer());
  ASSERT_GT(attrs.size(), 10u);
  CheckExactSummation(attrs);

  // On the NVRAM fast path the wire and CPU phases carry the latency.
  sim::Duration net = 0, total = 0;
  for (const obs::Profiler::Attribution& a : attrs) {
    for (const auto& [name, d] : a.components) {
      if (name == "net.transmit" || name == "server.cpu") net += d;
    }
    total += a.end - a.start;
  }
  EXPECT_GT(net, 0u);
  EXPECT_GT(total, net);
}

TEST(AttributionTest, DiskPhasesNonzeroWhenAckAfterDisk) {
  harness::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.tracing = true;
  cfg.profiling = true;
  cfg.server.ack_after_disk = true;
  harness::Cluster cluster(cfg);
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  for (int i = 0; i < 5; ++i) {
    // The client roots its wal.group/ForceLog spans under the caller's
    // current context (normally the engine's "txn" trace) — a bare
    // WriteLog would record nothing.
    obs::SpanContext txn = cluster.tracer().StartTrace("txn", "client-1");
    obs::Tracer::Scope scope(&cluster.tracer(), txn);
    Result<Lsn> lsn = c->WriteLog(ToBytes("record-" + std::to_string(i)));
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(ForceAll(cluster, *c, *lsn).ok());
    cluster.tracer().EndSpan(txn);
    cluster.sim().RunFor(100 * sim::kMillisecond);
  }

  const std::vector<obs::Profiler::Attribution> attrs =
      cluster.profiler().AttributeForces(cluster.tracer());
  ASSERT_FALSE(attrs.empty());
  CheckExactSummation(attrs);
  // Forces waited for the media: rotation + transfer must show up.
  sim::Duration disk = 0;
  for (const obs::Profiler::Attribution& a : attrs) {
    for (const auto& [name, d] : a.components) {
      if (name == "rotation.wait" || name == "media.write") disk += d;
    }
  }
  EXPECT_GT(disk, 0u);
}

// --- closed-form cross-check ---

TEST(ProfilerTest, MeasuredUtilizationTracksClosedFormsBelowSaturation) {
  constexpr int kClients = 20;
  constexpr int kServers = 6;
  constexpr int kNetworks = 2;
  constexpr int kSeconds = 5;

  harness::ClusterConfig cfg;
  cfg.num_servers = kServers;
  cfg.num_networks = kNetworks;
  cfg.server.cpu_mips = 4.0;
  cfg.server.flush_interval = 1 * sim::kSecond;
  cfg.profiling = true;
  harness::Cluster cluster(cfg);
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < kClients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.seed = 300 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }
  cluster.sim().RunFor(2 * sim::kSecond);
  const sim::Time w0 = cluster.sim().Now();
  cluster.sim().RunFor(kSeconds * sim::kSecond);
  const sim::Time w1 = cluster.sim().Now();

  double cpu = 0, disk = 0, net = 0;
  const obs::Profiler& prof = cluster.profiler();
  for (int s = 1; s <= kServers; ++s) {
    const std::string name = "server-" + std::to_string(s);
    cpu += prof.Utilization(name + "/cpu", w0, w1);
    disk += prof.Utilization(name + "/disk", w0, w1);
  }
  cpu /= kServers;
  disk /= kServers;
  for (int n = 0; n < kNetworks; ++n) {
    net += prof.Utilization("net-" + std::to_string(n), w0, w1);
  }
  net /= kNetworks;

  analysis::CapacityInputs in;
  in.clients = kClients;
  in.servers = kServers;
  const analysis::CapacityOutputs out = analysis::ComputeCapacity(in);
  EXPECT_NEAR(cpu, out.cpu_fraction_comm + out.cpu_fraction_logging, 0.05);
  EXPECT_NEAR(disk, out.disk_utilization, 0.05);
  EXPECT_NEAR(net, out.network_utilization / kNetworks, 0.05);
}

// --- determinism under chaos ---

std::string RunProfiledFaultedWorkload() {
  harness::ClusterConfig cfg;
  cfg.tracing = true;
  cfg.profiling = true;
  cfg.seed = 7;
  harness::Cluster cluster(cfg);
  harness::ClientHandle c = cluster.AddClient();
  EXPECT_TRUE(InitClient(cluster, *c).ok());

  chaos::FaultPlan plan;
  plan.CrashServer(1 * sim::kSecond, 2)
      .DegradeLink(2 * sim::kSecond, 0, 1000, 1,
                   net::LinkFault{0.3, 1 * sim::kMillisecond})
      .RestartServer(4 * sim::kSecond, 2)
      .RestoreLink(5 * sim::kSecond, 0, 1000, 1);
  cluster.chaos().Execute(plan);

  for (int i = 0; i < 20; ++i) {
    obs::SpanContext txn = cluster.tracer().StartTrace("txn", "client-1");
    obs::Tracer::Scope scope(&cluster.tracer(), txn);
    Result<Lsn> lsn = c->WriteLog(ToBytes("r" + std::to_string(i)));
    if (lsn.ok()) (void)ForceAll(cluster, *c, *lsn);
    cluster.tracer().EndSpan(txn);
    cluster.sim().RunFor(300 * sim::kMillisecond);
  }

  const obs::Profiler& prof = cluster.profiler();
  const std::vector<obs::Profiler::Attribution> attrs =
      prof.AttributeForces(cluster.tracer());
  CheckExactSummation(attrs);  // exactness holds under faults too
  std::string attr_text;
  for (const obs::Profiler::Attribution& a : attrs) {
    char line[160];
    std::snprintf(line, sizeof(line), "force span=%" PRIu64, a.span);
    attr_text += line;
    for (const auto& [name, d] : a.components) {
      std::snprintf(line, sizeof(line), " %s=%" PRIu64, name.c_str(), d);
      attr_text += line;
    }
    attr_text += "\n";
  }
  const std::vector<obs::CriticalPath> paths =
      obs::ExtractCriticalPaths(cluster.tracer());
  return prof.UtilizationText(0, cluster.sim().Now()) + "---\n" +
         obs::CriticalPathText(paths) + "---\n" + attr_text + "---\n" +
         obs::ChromeTraceJsonColored(cluster.tracer(), paths);
}

TEST(ProfilerDeterminismTest, ArtifactsByteIdenticalUnderFaultPlan) {
  const std::string first = RunProfiledFaultedWorkload();
  const std::string second = RunProfiledFaultedWorkload();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("server-2"), std::string::npos);
  EXPECT_NE(first.find("force span="), std::string::npos);
  EXPECT_EQ(first, second);
}

// --- metrics integration ---

TEST(ProfilerMetricsTest, SnapshotCarriesAttributionUtilizationAndBytesCopied) {
  harness::ClusterConfig cfg;
  cfg.tracing = true;
  cfg.profiling = true;
  harness::Cluster cluster(cfg);
  cluster.profiler().RegisterMetrics(
      &cluster.metrics(), [&cluster]() { return cluster.sim().Now(); });
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  obs::SpanContext txn = cluster.tracer().StartTrace("txn", "client-1");
  {
    obs::Tracer::Scope scope(&cluster.tracer(), txn);
    Result<Lsn> lsn = c->WriteLog(ToBytes("hello"));
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE(ForceAll(cluster, *c, *lsn).ok());
  }
  cluster.tracer().EndSpan(txn);
  cluster.sim().RunFor(1 * sim::kSecond);
  cluster.profiler().UpdateAttributionMetrics(cluster.tracer());

  const obs::MetricsSnapshot snap =
      cluster.metrics().Snapshot(cluster.sim().Now());
  // Histograms flatten with a p99 alongside p50/p95.
  EXPECT_GT(snap.Get("profiler/attr/total/count"), 0.0);
  ASSERT_TRUE(snap.values.count("profiler/attr/total/p99"));
  EXPECT_GE(snap.Get("profiler/attr/total/p99"),
            snap.Get("profiler/attr/total/p50"));
  // Utilization callbacks for resources wired by the cluster. The two
  // record copies land on two of the three servers, so count matches
  // rather than naming one.
  double busy_server_cpus = 0, nvram_levels = 0;
  for (const auto& [key, value] : snap.values) {
    if (key.rfind("profiler/util/server-", 0) == 0 &&
        key.find("/cpu") != std::string::npos && value > 0) {
      ++busy_server_cpus;
    }
    if (key.rfind("profiler/occupancy/server-", 0) == 0) ++nvram_levels;
  }
  EXPECT_GE(busy_server_cpus, 2);
  EXPECT_GE(nvram_levels, 2);
  // The process-wide copy counter registers as a first-class metric.
  ASSERT_TRUE(snap.values.count("process/bytes_copied"));
  EXPECT_GT(snap.Get("process/bytes_copied"), 0.0);
}

}  // namespace
}  // namespace dlog
