// Full-stack randomized fault injection: clients run forced writes over
// the real protocol stack while servers crash and restart and the
// network loses and duplicates packets. Invariant: every force-
// acknowledged record is readable with exact contents afterwards.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "harness/cluster.h"

namespace dlog {
namespace {

using client::LogClientConfig;
using harness::Cluster;
using harness::ClusterConfig;

class SystemFaultProperty
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SystemFaultProperty, ForcedRecordsSurviveServerChurn) {
  const auto [servers, loss, seed] = GetParam();

  ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  cluster_cfg.network.loss_probability = loss;
  cluster_cfg.network.duplicate_probability = loss / 2;
  cluster_cfg.seed = seed;
  Cluster cluster(cluster_cfg);

  LogClientConfig ccfg;
  ccfg.client_id = 1;
  ccfg.force_timeout = 100 * sim::kMillisecond;
  ccfg.force_retries = 2;
  ccfg.server_retry_backoff = 2 * sim::kSecond;
  ccfg.seed = seed;
  auto c = cluster.AddClient(ccfg);

  bool ready = false;
  c->Init([&](Status st) { ready = st.ok(); });
  ASSERT_TRUE(cluster.RunUntil([&]() { return ready; }));

  Rng rng(seed * 131);
  std::map<Lsn, std::string> durable;

  // Crash/restart schedule: every ~1.5 s, crash one random server for
  // ~1 s — but never let fewer than N stay up.
  int down_server = 0;  // 0 = none
  for (int round = 0; round < 25; ++round) {
    // Issue a small burst and force it.
    Lsn last = kNoLsn;
    std::map<Lsn, std::string> burst;
    for (int i = 0; i < 4; ++i) {
      const std::string data =
          "r" + std::to_string(round) + "-" + std::to_string(i);
      Result<Lsn> lsn = c->WriteLog(ToBytes(data));
      ASSERT_TRUE(lsn.ok());
      burst[*lsn] = data;
      last = *lsn;
    }
    bool forced = false;
    Status force_st = Status::Internal("pending");
    c->ForceLog(last, [&](Status st) {
      force_st = st;
      forced = true;
    });

    // Fault injection while the force is in flight.
    if (down_server != 0 && rng.NextBelow(2) == 0) {
      cluster.server(down_server).Restart();
      down_server = 0;
    } else if (down_server == 0 && rng.NextBelow(3) == 0 && servers > 2) {
      down_server = 1 + static_cast<int>(rng.NextBelow(servers));
      cluster.server(down_server).Crash();
    }

    ASSERT_TRUE(cluster.RunUntil([&]() { return forced; },
                                 120 * sim::kSecond))
        << "round " << round << " seed " << seed;
    ASSERT_TRUE(force_st.ok());
    for (auto& [lsn, data] : burst) durable[lsn] = data;
  }

  // Bring everything back and audit.
  if (down_server != 0) cluster.server(down_server).Restart();
  cluster.sim().RunFor(2 * sim::kSecond);
  for (const auto& [lsn, data] : durable) {
    Result<Bytes> r = Status::Internal("pending");
    bool done = false;
    c->ReadLog(lsn, [&](Result<Bytes> got) {
      r = std::move(got);
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }, 60 * sim::kSecond));
    ASSERT_TRUE(r.ok()) << "lsn " << lsn << ": " << r.status().ToString();
    EXPECT_EQ(ToString(*r), data) << "lsn " << lsn;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemFaultProperty,
    ::testing::Combine(::testing::Values(3, 5),       // servers
                       ::testing::Values(0.0, 0.05),  // packet loss
                       ::testing::Range(1, 5)));      // seeds

// Client crash/restart cycles over the real stack: the recovered client
// must see every previously forced record and keep epochs rising.
class ClientRestartProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClientRestartProperty, ForcedHistorySurvivesRestarts) {
  const int seed = GetParam();
  ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 4;
  cluster_cfg.seed = seed;
  Cluster cluster(cluster_cfg);

  std::map<Lsn, std::string> durable;
  Epoch last_epoch = 0;
  Rng rng(seed * 53);

  for (int life = 0; life < 5; ++life) {
    LogClientConfig ccfg;
    ccfg.client_id = 9;
    ccfg.node_id = 1000 + life;
    ccfg.seed = seed * 10 + life;
    auto c = cluster.AddClient(ccfg);
    bool ready = false;
    Status init_st;
    for (int attempt = 0; attempt < 5 && !ready; ++attempt) {
      bool done = false;
      c->Init([&](Status st) {
        init_st = st;
        ready = st.ok();
        done = true;
      });
      ASSERT_TRUE(cluster.RunUntil([&]() { return done; },
                                   60 * sim::kSecond));
    }
    ASSERT_TRUE(ready) << init_st.ToString();
    EXPECT_GT(c->current_epoch(), last_epoch);
    last_epoch = c->current_epoch();

    // Verify all previously durable records.
    for (const auto& [lsn, data] : durable) {
      Result<Bytes> r = Status::Internal("pending");
      bool done = false;
      c->ReadLog(lsn, [&](Result<Bytes> got) {
        r = std::move(got);
        done = true;
      });
      ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
      ASSERT_TRUE(r.ok()) << "life " << life << " lsn " << lsn;
      EXPECT_EQ(ToString(*r), data);
    }

    // New forced work, then some unforced tail, then crash.
    const int writes = 3 + static_cast<int>(rng.NextBelow(5));
    Lsn last = kNoLsn;
    std::map<Lsn, std::string> burst;
    for (int i = 0; i < writes; ++i) {
      const std::string data =
          "life" + std::to_string(life) + "-" + std::to_string(i);
      Result<Lsn> lsn = c->WriteLog(ToBytes(data));
      ASSERT_TRUE(lsn.ok());
      burst[*lsn] = data;
      last = *lsn;
    }
    bool forced = false;
    c->ForceLog(last, [&](Status st) { forced = st.ok(); });
    ASSERT_TRUE(cluster.RunUntil([&]() { return forced; },
                                 60 * sim::kSecond));
    for (auto& [lsn, data] : burst) durable[lsn] = data;
    // Unforced records may or may not survive; they must not disturb
    // anything else.
    (void)c->WriteLog(ToBytes("unforced-a"));
    (void)c->WriteLog(ToBytes("unforced-b"));
    c->Crash();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClientRestartProperty,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace dlog
