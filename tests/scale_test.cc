// Large-fleet determinism: a ~500-client slice of the E17 scale
// workload must end in a byte-identical state on the serial engine,
// the parallel engine at several worker counts, and — the shard-group
// fast path — at several nodes-per-shard group sizes. Also pins the
// timer wheel's schedule-invisibility contract at fleet scale: a
// heap-only serial run is byte-identical to the wheel-enabled default.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "harness/stop_latch.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace dlog {
namespace {

constexpr int kClients = 500;
constexpr int kServers = 10;

struct EngineSetup {
  int workers = 0;          // 0 = serial
  int nodes_per_shard = 1;  // parallel only
  bool timer_wheel = true;  // serial only
};

// One run of the miniature fleet; returns a deterministic end-state
// signature (per-client committed/failed/shed + per-server records).
std::string RunFleet(const EngineSetup& setup) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = kServers;
  cluster_cfg.shard_workers = setup.workers;
  cluster_cfg.nodes_per_shard = setup.nodes_per_shard;
  cluster_cfg.timer_wheel = setup.timer_wheel;
  cluster_cfg.network.bandwidth_bits_per_sec = 1e9;
  // Quantized stop grid: stopping times depend only on the simulated
  // schedule, so every engine stops at the same instant.
  cluster_cfg.run_until_quantum = sim::kMillisecond;
  harness::Cluster cluster(cluster_cfg);

  harness::StopLatch started(kClients);
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  drivers.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    for (int j = 0; j < 5; ++j) {
      log_cfg.servers.push_back(
          static_cast<net::NodeId>((i + j) % kServers + 1));
    }
    log_cfg.generator_reps.assign(log_cfg.servers.begin(),
                                  log_cfg.servers.begin() + 3);
    log_cfg.seed = 500 + static_cast<uint64_t>(i);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 2.0;
    driver_cfg.seed = 5000 + static_cast<uint64_t>(i);
    driver_cfg.max_log_backlog = 64;
    driver_cfg.start_latch = &started;
    driver_cfg.bank.accounts = 100;
    driver_cfg.bank.tellers = 10;
    driver_cfg.bank.branches = 2;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
  }
  const sim::Duration spread = sim::kSecond;
  for (int i = 0; i < kClients; ++i) {
    harness::Et1Driver* d = drivers[static_cast<size_t>(i)].get();
    cluster.client_scheduler(i).At(
        static_cast<sim::Time>(i) * spread / kClients,
        [d]() { d->Start(); });
  }
  EXPECT_TRUE(cluster.RunUntil(started, 60 * sim::kSecond))
      << "fleet failed to initialize";
  cluster.RunFor(1 * sim::kSecond);
  for (auto& d : drivers) d->Stop();
  cluster.RunFor(500 * sim::kMillisecond);

  std::string sig;
  for (auto& d : drivers) {
    sig += std::to_string(d->committed()) + "," +
           std::to_string(d->failed()) + "," +
           std::to_string(d->txns_shed()) + ";";
  }
  for (int s = 1; s <= kServers; ++s) {
    sig += std::to_string(cluster.server(s).records_written().value()) + "|";
  }
  return sig;
}

TEST(ScaleTest, FleetIdenticalAcrossEnginesAndShardGroups) {
  const std::string serial = RunFleet({/*workers=*/0});
  EXPECT_NE(serial.find("|"), std::string::npos);
  const std::vector<EngineSetup> parallel_setups = {
      {2, 1}, {2, 32}, {4, 128}, {4, 512}};
  for (const EngineSetup& setup : parallel_setups) {
    EXPECT_EQ(serial, RunFleet(setup))
        << "diverged at workers=" << setup.workers
        << " nodes_per_shard=" << setup.nodes_per_shard;
  }
}

TEST(ScaleTest, TimerWheelScheduleInvisibleAtFleetScale) {
  // The wheel only re-stages heap insertion; the executed schedule —
  // and therefore the entire end state — must match a heap-only build.
  const std::string wheel = RunFleet({0, 1, /*timer_wheel=*/true});
  const std::string heap_only = RunFleet({0, 1, /*timer_wheel=*/false});
  EXPECT_EQ(wheel, heap_only);
}

}  // namespace
}  // namespace dlog
