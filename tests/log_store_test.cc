#include <gtest/gtest.h>

#include "common/log_types.h"
#include "server/client_log_store.h"
#include "server/track_format.h"

namespace dlog::server {
namespace {

LogRecord Rec(Lsn lsn, Epoch epoch, bool present = true,
              std::string_view data = "d") {
  LogRecord r;
  r.lsn = lsn;
  r.epoch = epoch;
  r.present = present;
  r.data = ToBytes(data);
  return r;
}

TEST(ClientLogStoreTest, EmptyStore) {
  ClientLogStore store;
  EXPECT_EQ(store.HighestLsn(), kNoLsn);
  EXPECT_EQ(store.TailEpoch(), 0u);
  EXPECT_TRUE(store.Intervals().empty());
  EXPECT_TRUE(store.Read(1).status().IsNotFound());
}

TEST(ClientLogStoreTest, SequentialWritesFormOneInterval) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 5; ++l) ASSERT_TRUE(store.Write(Rec(l, 1)).ok());
  IntervalList ivs = store.Intervals();
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (Interval{1, 1, 5}));
  EXPECT_EQ(store.HighestLsn(), 5u);
  EXPECT_EQ(store.ExpectedNextLsn(), 6u);
}

TEST(ClientLogStoreTest, LsnZeroRejected) {
  ClientLogStore store;
  EXPECT_FALSE(store.Write(Rec(0, 1)).ok());
}

TEST(ClientLogStoreTest, GapStartsNewInterval) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(1, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(2, 1)).ok());
  // Client switched away and back: LSNs 3-4 live elsewhere.
  ASSERT_TRUE(store.Write(Rec(5, 1)).ok());
  IntervalList ivs = store.Intervals();
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (Interval{1, 1, 2}));
  EXPECT_EQ(ivs[1], (Interval{1, 5, 5}));
}

TEST(ClientLogStoreTest, EpochChangeStartsNewInterval) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(1, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(2, 3)).ok());
  ASSERT_EQ(store.Intervals().size(), 2u);
  EXPECT_EQ(store.TailEpoch(), 3u);
}

TEST(ClientLogStoreTest, OutOfOrderRejected) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(5, 2)).ok());
  EXPECT_FALSE(store.Write(Rec(3, 2)).ok());   // lower LSN
  EXPECT_FALSE(store.Write(Rec(6, 1)).ok());   // lower epoch
  EXPECT_FALSE(store.Write(Rec(5, 2, false)).ok());  // conflicting dup
}

TEST(ClientLogStoreTest, ExactDuplicateIsIdempotent) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(1, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(1, 1)).ok());  // redelivery
  EXPECT_EQ(store.record_count(), 1u);
}

// Figure 3-3, Server 1: the recovery procedure rewrites the tail record
// <9,3> as <9,4> — same LSN, higher epoch.
TEST(ClientLogStoreTest, TailRecopyWithHigherEpoch) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 9; ++l) ASSERT_TRUE(store.Write(Rec(l, 3)).ok());
  ASSERT_TRUE(store.Write(Rec(9, 4)).ok());
  ASSERT_TRUE(store.Write(Rec(10, 4, false, "")).ok());
  IntervalList ivs = store.Intervals();
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (Interval{3, 1, 9}));
  EXPECT_EQ(ivs[1], (Interval{4, 9, 10}));
  // ServerReadLog returns the highest-epoch version.
  EXPECT_EQ(store.Read(9)->epoch, 4u);
  EXPECT_FALSE(store.Read(10)->present);
}

// Reconstructs Server 1 of Figure 3-1 record by record.
TEST(ClientLogStoreTest, Figure31Server1) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 3; ++l) ASSERT_TRUE(store.Write(Rec(l, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(3, 3)).ok());           // recovery copy
  ASSERT_TRUE(store.Write(Rec(4, 3, false, "")).ok());  // not present
  for (Lsn l = 5; l <= 9; ++l) ASSERT_TRUE(store.Write(Rec(l, 3)).ok());

  IntervalList ivs = store.Intervals();
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (Interval{1, 1, 3}));
  EXPECT_EQ(ivs[1], (Interval{3, 3, 9}));
  EXPECT_EQ(store.Read(3)->epoch, 3u);
  EXPECT_FALSE(store.Read(4)->present);
  EXPECT_TRUE(store.Read(5)->present);
}

TEST(ClientLogStoreTest, StagedCopiesInvisibleUntilInstall) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 9; ++l) ASSERT_TRUE(store.Write(Rec(l, 3)).ok());
  ASSERT_TRUE(store.StageCopy(Rec(9, 4, true, "copy")).ok());
  ASSERT_TRUE(store.StageCopy(Rec(10, 4, false, "")).ok());

  // Not visible yet.
  EXPECT_EQ(store.Read(9)->epoch, 3u);
  EXPECT_EQ(store.HighestLsn(), 9u);
  EXPECT_EQ(store.Intervals().size(), 1u);
  EXPECT_EQ(store.staged_count(), 2u);

  Result<std::vector<LogRecord>> installed = store.InstallCopies(4);
  ASSERT_TRUE(installed.ok());
  EXPECT_EQ(installed->size(), 2u);
  EXPECT_EQ(store.Read(9)->epoch, 4u);
  EXPECT_EQ(store.Read(9)->data, ToBytes("copy"));
  EXPECT_EQ(store.HighestLsn(), 10u);
  EXPECT_EQ(store.staged_count(), 0u);
}

TEST(ClientLogStoreTest, InstallOfUnknownEpochIsNoOp) {
  ClientLogStore store;
  Result<std::vector<LogRecord>> r = store.InstallCopies(99);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(ClientLogStoreTest, InstallSortsByLsn) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 5; ++l) ASSERT_TRUE(store.Write(Rec(l, 1)).ok());
  // Staged out of order.
  ASSERT_TRUE(store.StageCopy(Rec(5, 2, true, "b")).ok());
  ASSERT_TRUE(store.StageCopy(Rec(4, 2, true, "a")).ok());
  ASSERT_TRUE(store.InstallCopies(2).ok());
  IntervalList ivs = store.Intervals();
  // Installed copies form a contiguous epoch-2 sequence 4-5.
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[1], (Interval{2, 4, 5}));
}

TEST(ClientLogStoreTest, CopiesForDifferentEpochsAreIndependent) {
  ClientLogStore store;
  ASSERT_TRUE(store.Write(Rec(1, 1)).ok());
  ASSERT_TRUE(store.StageCopy(Rec(1, 2)).ok());
  ASSERT_TRUE(store.StageCopy(Rec(1, 3)).ok());
  ASSERT_TRUE(store.InstallCopies(3).ok());
  EXPECT_EQ(store.Read(1)->epoch, 3u);
  EXPECT_EQ(store.staged_count(), 1u);  // epoch-2 copy still staged
}

TEST(ClientLogStoreTest, FromRecordsRoundTrip) {
  ClientLogStore store;
  for (Lsn l = 1; l <= 3; ++l) ASSERT_TRUE(store.Write(Rec(l, 1)).ok());
  ASSERT_TRUE(store.Write(Rec(3, 3)).ok());
  ASSERT_TRUE(store.Write(Rec(4, 3, false, "")).ok());
  ASSERT_TRUE(store.Write(Rec(5, 3)).ok());

  ClientLogStore rebuilt = ClientLogStore::FromRecords(store.stream());
  EXPECT_EQ(rebuilt.Intervals(), store.Intervals());
  EXPECT_EQ(rebuilt.record_count(), store.record_count());
  EXPECT_EQ(rebuilt.Read(3)->epoch, 3u);
}

TEST(ClientLogStoreTest, FromRecordsSkipsDuplicates) {
  std::vector<LogRecord> records = {Rec(1, 1), Rec(2, 1), Rec(1, 1),
                                    Rec(2, 1), Rec(3, 1)};
  ClientLogStore store = ClientLogStore::FromRecords(records);
  EXPECT_EQ(store.record_count(), 3u);
  ASSERT_EQ(store.Intervals().size(), 1u);
  EXPECT_EQ(store.Intervals()[0], (Interval{1, 1, 3}));
}

// --- Track format ---

TEST(TrackFormatTest, EntryRoundTrip) {
  StreamEntry e{42, Rec(7, 3, true, "payload")};
  Bytes encoded = EncodeStreamEntry(e);
  EXPECT_EQ(encoded.size(), StreamEntrySize(e));
  Result<StreamEntry> decoded = DecodeStreamEntry(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, e);
}

TEST(TrackFormatTest, TrackRoundTrip) {
  std::vector<StreamEntry> entries = {
      {1, Rec(1, 1, true, "a")},
      {2, Rec(100, 5, false, "")},
      {1, Rec(2, 1, true, "interleaved")},
  };
  Bytes track = EncodeTrack(entries);
  Result<std::vector<StreamEntry>> decoded = DecodeTrack(track);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entries);
}

TEST(TrackFormatTest, CorruptTrackDetected) {
  Bytes track = EncodeTrack({{1, Rec(1, 1)}});
  track[track.size() / 2] ^= 0xFF;
  EXPECT_TRUE(DecodeTrack(track).status().IsCorruption());
}

TEST(TrackFormatTest, EmptyTrack) {
  Bytes track = EncodeTrack({});
  Result<std::vector<StreamEntry>> decoded = DecodeTrack(track);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

}  // namespace
}  // namespace dlog::server
