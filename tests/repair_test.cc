// Media-failure repair (Section 5.3's "repair of a log when one
// redundant copy is lost"): a server loses its storage; RepairLog
// restores N-way redundancy from the surviving copies.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "harness/cluster.h"

namespace dlog {
namespace {

using client::LogClientConfig;
using harness::Cluster;
using harness::ClusterConfig;

struct Fixture {
  explicit Fixture(int servers = 4) : cluster(MakeConfig(servers)) {
    LogClientConfig cfg;
    cfg.client_id = 1;
    log = cluster.AddClient(cfg);
    bool ready = false;
    log->Init([&](Status st) { ready = st.ok(); });
    cluster.RunUntil([&]() { return ready; });
    EXPECT_TRUE(log->IsInitialized());
  }

  static ClusterConfig MakeConfig(int servers) {
    ClusterConfig cfg;
    cfg.num_servers = servers;
    return cfg;
  }

  void WriteForced(int n) {
    Lsn last = kNoLsn;
    for (int i = 0; i < n; ++i) {
      auto lsn = log->WriteLog(ToBytes("rec" + std::to_string(i)));
      ASSERT_TRUE(lsn.ok());
      last = *lsn;
    }
    bool done = false;
    log->ForceLog(last, [&](Status st) {
      EXPECT_TRUE(st.ok());
      done = true;
    });
    ASSERT_TRUE(cluster.RunUntil([&]() { return done; }));
  }

  Status Repair() {
    Status result = Status::Internal("never");
    bool done = false;
    log->RepairLog([&](Status st) {
      result = st;
      done = true;
    });
    cluster.RunUntil([&]() { return done; }, 120 * sim::kSecond);
    return result;
  }

  int HoldersOf(Lsn lsn) {
    int holders = 0;
    for (int s = 1; s <= cluster.num_servers(); ++s) {
      if (!cluster.server(s).IsUp()) continue;
      for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
        if (r.lsn == lsn) {
          ++holders;
          break;
        }
      }
    }
    return holders;
  }

  /// The server holding LSN 1 (a write-set member).
  int VictimFor(Lsn lsn) {
    for (int s = 1; s <= cluster.num_servers(); ++s) {
      for (const LogRecord& r : cluster.server(s).RecordsOf(1)) {
        if (r.lsn == lsn) return s;
      }
    }
    return 0;
  }

  Cluster cluster;
  harness::ClientHandle log;
};

TEST(RepairTest, NoopWhenFullyReplicated) {
  Fixture f;
  f.WriteForced(10);
  EXPECT_TRUE(f.Repair().ok());
  for (Lsn lsn = 1; lsn <= 10; ++lsn) EXPECT_EQ(f.HoldersOf(lsn), 2);
}

TEST(RepairTest, RestoresRedundancyAfterMediaLoss) {
  Fixture f;
  f.WriteForced(30);
  const int victim = f.VictimFor(1);
  ASSERT_NE(victim, 0);
  f.cluster.server(victim).WipeStorage();
  f.cluster.server(victim).Restart();
  f.cluster.sim().RunFor(sim::kSecond);

  // Redundancy lost: one holder for the victim's share.
  EXPECT_EQ(f.HoldersOf(1), 1);

  ASSERT_TRUE(f.Repair().ok());
  // Every record has two holders again.
  for (Lsn lsn = 1; lsn <= 30; ++lsn) {
    EXPECT_GE(f.HoldersOf(lsn), 2) << "lsn " << lsn;
  }
  // And everything still reads back correctly.
  for (Lsn lsn = 1; lsn <= 30; lsn += 7) {
    bool done = false;
    Result<Bytes> r = Status::Internal("never");
    f.log->ReadLog(lsn, [&](Result<Bytes> got) {
      r = std::move(got);
      done = true;
    });
    ASSERT_TRUE(f.cluster.RunUntil([&]() { return done; }));
    EXPECT_TRUE(r.ok()) << "lsn " << lsn;
  }
}

TEST(RepairTest, SurvivesSubsequentLossOfOriginalHolder) {
  Fixture f;
  f.WriteForced(20);
  const int victim = f.VictimFor(1);
  f.cluster.server(victim).WipeStorage();
  f.cluster.server(victim).Restart();
  ASSERT_TRUE(f.Repair().ok());

  // Now wipe the *other* original holder: the repaired copies must carry
  // the log on their own.
  const int second = f.VictimFor(1);
  ASSERT_NE(second, 0);
  f.cluster.server(second).WipeStorage();
  f.cluster.server(second).Restart();
  f.cluster.sim().RunFor(sim::kSecond);

  for (Lsn lsn = 1; lsn <= 20; lsn += 5) {
    EXPECT_GE(f.HoldersOf(lsn), 1) << "lsn " << lsn;
  }
  // A fresh client recovers the full log from the repaired copies.
  f.cluster.CrashClient(f.log);
  f.cluster.RestartClient(f.log);
  auto log2 = f.log;
  bool ready = false;
  for (int attempt = 0; attempt < 5 && !ready; ++attempt) {
    bool done = false;
    log2->Init([&](Status st) {
      ready = st.ok();
      done = true;
    });
    ASSERT_TRUE(f.cluster.RunUntil([&]() { return done; },
                                   60 * sim::kSecond));
  }
  ASSERT_TRUE(ready);
  EXPECT_GE(log2->EndOfLog(), 20u);
  bool done = false;
  Result<Bytes> r = Status::Internal("never");
  log2->ReadLog(1, [&](Result<Bytes> got) {
    r = std::move(got);
    done = true;
  });
  ASSERT_TRUE(f.cluster.RunUntil([&]() { return done; }));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(*r), "rec0");
}

TEST(RepairTest, ReportsPartialWhenNoSpareServers) {
  Fixture f(2);  // M = N = 2: no spare server to repair onto
  f.WriteForced(5);
  const int victim = f.VictimFor(1);
  f.cluster.server(victim).WipeStorage();
  f.cluster.server(victim).Restart();
  f.cluster.sim().RunFor(sim::kSecond);
  Status st = f.Repair();
  // With M == N the only eligible target is the wiped server itself,
  // which no longer appears as a holder — so repair succeeds by copying
  // back onto it.
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(f.HoldersOf(1), 2);
}

}  // namespace
}  // namespace dlog
