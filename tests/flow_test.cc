#include <gtest/gtest.h>

#include "common/rng.h"
#include "flow/admission.h"
#include "flow/retry_policy.h"
#include "flow/window.h"
#include "sim/time.h"

namespace dlog::flow {
namespace {

// --- AdmissionController ---

TEST(AdmissionTest, AdmitsBelowThreshold) {
  AdmissionController ctrl(AdmissionConfig{});
  const auto d = ctrl.Admit(/*nvram_fraction=*/0.3, /*disk_queue_tracks=*/0);
  EXPECT_TRUE(d.admit);
  EXPECT_EQ(d.retry_after, 0u);
  EXPECT_EQ(ctrl.admitted().value(), 1u);
  EXPECT_EQ(ctrl.shed().value(), 0u);
}

TEST(AdmissionTest, ShedsAboveNvramThreshold) {
  AdmissionConfig cfg;
  cfg.nvram_shed_fraction = 0.5;
  AdmissionController ctrl(cfg);
  const auto d = ctrl.Admit(0.6, 0);
  EXPECT_FALSE(d.admit);
  EXPECT_GE(d.retry_after, cfg.min_retry_after);
  EXPECT_LE(d.retry_after, cfg.max_retry_after);
  EXPECT_EQ(ctrl.shed().value(), 1u);
}

TEST(AdmissionTest, RetryAfterGrowsWithSeverity) {
  AdmissionConfig cfg;
  cfg.nvram_shed_fraction = 0.5;
  AdmissionController ctrl(cfg);
  const auto mild = ctrl.Admit(0.55, 0);
  const auto deep = ctrl.Admit(0.99, 0);
  ASSERT_FALSE(mild.admit);
  ASSERT_FALSE(deep.admit);
  EXPECT_GT(deep.retry_after, mild.retry_after);
}

TEST(AdmissionTest, DiskQueueSignalSheds) {
  AdmissionConfig cfg;
  cfg.disk_queue_shed_tracks = 4;
  AdmissionController ctrl(cfg);
  EXPECT_TRUE(ctrl.Admit(0.1, 4).admit);   // at the limit: fine
  EXPECT_FALSE(ctrl.Admit(0.1, 5).admit);  // beyond it: shed
}

TEST(AdmissionTest, DisabledModeUsesLegacyNvramDecisionOnly) {
  AdmissionConfig cfg;
  cfg.enabled = false;
  cfg.nvram_shed_fraction = 0.5;
  cfg.disk_queue_shed_tracks = 1;
  AdmissionController ctrl(cfg);
  // Disabled: the disk-queue signal is ignored (legacy behavior was
  // NVRAM-fraction only) but the NVRAM threshold still sheds.
  EXPECT_TRUE(ctrl.Admit(0.4, 100).admit);
  EXPECT_FALSE(ctrl.Admit(0.6, 0).admit);
}

TEST(AdmissionTest, ValidateRejectsBadConfig) {
  AdmissionConfig cfg;
  cfg.nvram_shed_fraction = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = AdmissionConfig{};
  cfg.min_retry_after = 2 * sim::kSecond;
  cfg.max_retry_after = 1 * sim::kSecond;
  EXPECT_FALSE(cfg.Validate().ok());
}

// --- RetryPolicy ---

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicyConfig cfg;
  cfg.initial_backoff = 10 * sim::kMillisecond;
  cfg.multiplier = 2.0;
  cfg.max_backoff = 100 * sim::kMillisecond;
  cfg.jitter = 0.0;  // deterministic ladder
  RetryPolicy policy(cfg);
  EXPECT_EQ(policy.BackoffFor(0, nullptr), 10 * sim::kMillisecond);
  EXPECT_EQ(policy.BackoffFor(1, nullptr), 20 * sim::kMillisecond);
  EXPECT_EQ(policy.BackoffFor(2, nullptr), 40 * sim::kMillisecond);
  // Capped (and safe for huge attempt counts — no overflow).
  EXPECT_EQ(policy.BackoffFor(10, nullptr), 100 * sim::kMillisecond);
  EXPECT_EQ(policy.BackoffFor(1000, nullptr), 100 * sim::kMillisecond);
}

TEST(RetryPolicyTest, JitterStaysInBoundsAndIsDeterministic) {
  RetryPolicyConfig cfg;
  cfg.initial_backoff = 100 * sim::kMillisecond;
  cfg.jitter = 0.5;
  RetryPolicy policy(cfg);
  Rng a(42), b(42), c(7);
  for (int i = 0; i < 64; ++i) {
    const sim::Duration wa = policy.BackoffFor(0, &a);
    const sim::Duration wb = policy.BackoffFor(0, &b);
    // Same-seeded streams draw the same jitter: byte-identical runs.
    EXPECT_EQ(wa, wb);
    // Bounds: [b * (1 - jitter), b].
    EXPECT_GE(wa, 50 * sim::kMillisecond);
    EXPECT_LE(wa, 100 * sim::kMillisecond);
  }
  // A different stream draws a different sequence (overwhelmingly).
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 64; ++i) {
    if (policy.BackoffFor(0, &a2) != policy.BackoffFor(0, &c)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryPolicyTest, TokenBucketBoundsAndRefills) {
  RetryPolicyConfig cfg;
  cfg.budget_tokens = 2.0;
  cfg.budget_refill_per_sec = 1.0;
  RetryPolicy policy(cfg);
  sim::Time now = 0;
  EXPECT_TRUE(policy.TryAcquireRetryToken(now));
  EXPECT_TRUE(policy.TryAcquireRetryToken(now));
  EXPECT_FALSE(policy.TryAcquireRetryToken(now));  // budget exhausted
  now += 1 * sim::kSecond;                         // refills one token
  EXPECT_TRUE(policy.TryAcquireRetryToken(now));
  EXPECT_FALSE(policy.TryAcquireRetryToken(now));
  // The bucket never exceeds its cap.
  now += 100 * sim::kSecond;
  EXPECT_TRUE(policy.TryAcquireRetryToken(now));
  EXPECT_TRUE(policy.TryAcquireRetryToken(now));
  EXPECT_FALSE(policy.TryAcquireRetryToken(now));
}

TEST(RetryPolicyTest, ValidateRejectsBadConfig) {
  RetryPolicyConfig cfg;
  cfg.jitter = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = RetryPolicyConfig{};
  cfg.max_backoff = cfg.initial_backoff / 2;
  EXPECT_FALSE(cfg.Validate().ok());
}

// --- AimdWindow ---

AimdConfig SmallWindow() {
  AimdConfig cfg;
  cfg.enabled = true;
  cfg.min_window_bytes = 1000;
  cfg.initial_window_bytes = 4000;
  cfg.max_window_bytes = 8000;
  cfg.increase_bytes = 500;
  cfg.decrease_factor = 0.5;
  cfg.congestion_guard = 50 * sim::kMillisecond;
  return cfg;
}

TEST(AimdWindowTest, DisabledAlwaysAllows) {
  AimdWindow w{AimdConfig{}};
  EXPECT_TRUE(w.Allows(1u << 30, 1u << 20));
}

TEST(AimdWindowTest, AdditiveIncreaseMultiplicativeDecrease) {
  AimdWindow w(SmallWindow());
  EXPECT_EQ(w.current(), 4000u);
  w.OnAck(1400);
  EXPECT_EQ(w.current(), 4500u);  // additive
  w.OnCongestion(0);
  EXPECT_EQ(w.current(), 2250u);  // multiplicative
  // Growth is clamped at the max.
  for (int i = 0; i < 100; ++i) w.OnAck(1400);
  EXPECT_EQ(w.current(), 8000u);
  // Shrink is clamped at the min.
  sim::Time now = sim::kSecond;
  for (int i = 0; i < 100; ++i) {
    w.OnCongestion(now);
    now += sim::kSecond;
  }
  EXPECT_EQ(w.current(), 1000u);
}

TEST(AimdWindowTest, CongestionGuardCoalescesBursts) {
  AimdWindow w(SmallWindow());
  w.OnCongestion(0);
  EXPECT_EQ(w.current(), 2000u);
  // A burst of congestion signals within the guard counts once.
  w.OnCongestion(10 * sim::kMillisecond);
  w.OnCongestion(20 * sim::kMillisecond);
  EXPECT_EQ(w.current(), 2000u);
  // Past the guard, a fresh signal shrinks again.
  w.OnCongestion(60 * sim::kMillisecond);
  EXPECT_EQ(w.current(), 1000u);
}

TEST(AimdWindowTest, ZeroOutstandingAlwaysAllowed) {
  AimdConfig cfg = SmallWindow();
  AimdWindow w(cfg);
  // Even a payload larger than the whole window may go when nothing is
  // in flight — the window can slow a sender but never deadlock it.
  EXPECT_TRUE(w.Allows(0, 100000));
  EXPECT_FALSE(w.Allows(3900, 200));
  EXPECT_TRUE(w.Allows(3700, 200));
}

TEST(AimdWindowTest, ValidateRejectsBadConfig) {
  AimdConfig cfg = SmallWindow();
  cfg.initial_window_bytes = cfg.max_window_bytes + 1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SmallWindow();
  cfg.decrease_factor = 1.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

}  // namespace
}  // namespace dlog::flow
