#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "epoch/id_generator.h"

namespace dlog::epoch {
namespace {

struct Fixture {
  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) {
      reps.push_back(std::make_unique<GeneratorStateRep>());
      raw.push_back(reps.back().get());
    }
    gen = std::make_unique<ReplicatedIdGenerator>(raw);
  }
  std::vector<std::unique_ptr<GeneratorStateRep>> reps;
  std::vector<GeneratorStateRep*> raw;
  std::unique_ptr<ReplicatedIdGenerator> gen;
};

TEST(IdGeneratorTest, QuorumSizes) {
  // ceil((N+1)/2) reads, ceil(N/2) writes.
  Fixture f3(3);
  EXPECT_EQ(f3.gen->ReadQuorum(), 2u);
  EXPECT_EQ(f3.gen->WriteQuorum(), 2u);
  Fixture f4(4);
  EXPECT_EQ(f4.gen->ReadQuorum(), 3u);   // ceil(5/2)
  EXPECT_EQ(f4.gen->WriteQuorum(), 2u);  // ceil(4/2)
  Fixture f5(5);
  EXPECT_EQ(f5.gen->ReadQuorum(), 3u);
  EXPECT_EQ(f5.gen->WriteQuorum(), 3u);
}

TEST(IdGeneratorTest, IdsStrictlyIncrease) {
  Fixture f(3);
  uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    Result<uint64_t> id = f.gen->NewId();
    ASSERT_TRUE(id.ok());
    EXPECT_GT(*id, prev);
    prev = *id;
  }
}

TEST(IdGeneratorTest, SingleRepresentativeWorks) {
  Fixture f(1);
  EXPECT_EQ(*f.gen->NewId(), 1u);
  EXPECT_EQ(*f.gen->NewId(), 2u);
}

TEST(IdGeneratorTest, ToleratesMinorityFailures) {
  Fixture f(5);
  ASSERT_EQ(*f.gen->NewId(), 1u);
  f.reps[0]->SetAvailable(false);
  f.reps[1]->SetAvailable(false);
  Result<uint64_t> id = f.gen->NewId();
  ASSERT_TRUE(id.ok());
  EXPECT_GT(*id, 1u);
}

TEST(IdGeneratorTest, MajorityFailureIsUnavailable) {
  Fixture f(5);
  for (int i = 0; i < 3; ++i) f.reps[i]->SetAvailable(false);
  EXPECT_TRUE(f.gen->NewId().status().IsUnavailable());
}

// A crash that interrupts NewId may skip values but must never allow a
// later NewId to repeat or go below an issued value.
TEST(IdGeneratorTest, CrashedNewIdSkipsButNeverRepeats) {
  Fixture f(5);
  uint64_t issued = *f.gen->NewId();
  for (int crash_writes = 0; crash_writes <= 3; ++crash_writes) {
    EXPECT_TRUE(
        f.gen->NewIdCrashAfterWrites(crash_writes).IsAborted());
    Result<uint64_t> next = f.gen->NewId();
    ASSERT_TRUE(next.ok());
    EXPECT_GT(*next, issued);
    issued = *next;
  }
}

// Even when a crashed NewId wrote to representatives that then fail, the
// read-write quorum intersection keeps identifiers increasing.
TEST(IdGeneratorTest, MonotoneAcrossFailuresAndCrashes) {
  Fixture f(5);
  uint64_t issued = 0;
  // Interleave: id, crash mid-id, representative churn, id ...
  for (int round = 0; round < 20; ++round) {
    Result<uint64_t> id = f.gen->NewId();
    ASSERT_TRUE(id.ok());
    EXPECT_GT(*id, issued);
    issued = *id;
    // A full write quorum (3 of 5) then crash: value consumed.
    ASSERT_TRUE(f.gen->NewIdCrashAfterWrites(3).IsAborted());
    // One representative flaps.
    f.reps[round % 5]->SetAvailable(false);
    id = f.gen->NewId();
    ASSERT_TRUE(id.ok());
    EXPECT_GT(*id, issued);
    issued = *id;
    f.reps[round % 5]->SetAvailable(true);
  }
}

TEST(IdGeneratorTest, ValuePropagatesToWriteQuorum) {
  Fixture f(3);
  ASSERT_TRUE(f.gen->NewId().ok());
  int holding = 0;
  for (auto& rep : f.reps) {
    if (rep->PeekValue() >= 1) ++holding;
  }
  EXPECT_GE(holding, 2);  // ceil(3/2) = 2
}

}  // namespace
}  // namespace dlog::epoch
