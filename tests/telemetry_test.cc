// Tests for the live telemetry layer: the streaming histogram the
// per-window quantiles ride on, the TimeSeriesCollector's sparse
// delta-encoded series (reset clamping, retention, sample-and-hold
// levels), the HealthMonitor rules and their hysteresis, the flight
// recorder rings, and the end-to-end determinism gates — series and
// alert exports byte-identical serial vs parallel at any worker count,
// and across TrialRunner thread counts.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "client/log_client.h"
#include "harness/cluster.h"
#include "harness/et1_driver.h"
#include "harness/stop_latch.h"
#include "harness/trial_runner.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dlog::obs {
namespace {

using sim::StreamingHistogram;

// --- StreamingHistogram ---

TEST(StreamingHistogramTest, BucketBoundsRoundTrip) {
  // Every value maps into a bucket whose [low, high] range contains it,
  // across the linear region, the log-linear region, and saturation.
  const uint64_t probes[] = {0,    1,     15,     16,     17,   100,
                             1000, 12345, 1 << 20, 1ull << 39};
  for (uint64_t v : probes) {
    const size_t b = StreamingHistogram::BucketIndex(v);
    EXPECT_LE(StreamingHistogram::BucketLow(b), v) << v;
    EXPECT_GE(StreamingHistogram::BucketHigh(b), v) << v;
  }
  // Saturation: everything at or past kMaxValue lands in the top bucket.
  EXPECT_EQ(StreamingHistogram::BucketIndex(StreamingHistogram::kMaxValue),
            StreamingHistogram::kNumBuckets - 1);
  EXPECT_EQ(StreamingHistogram::BucketIndex(UINT64_MAX),
            StreamingHistogram::kNumBuckets - 1);
}

TEST(StreamingHistogramTest, OccupiedRangeTracksRecordsAndMerge) {
  StreamingHistogram h;
  EXPECT_GT(h.bucket_lo(), h.bucket_hi());  // empty: inverted range
  h.Record(100);
  h.Record(5000);
  const size_t lo = StreamingHistogram::BucketIndex(100);
  const size_t hi = StreamingHistogram::BucketIndex(5000);
  EXPECT_EQ(h.bucket_lo(), lo);
  EXPECT_EQ(h.bucket_hi(), hi);

  StreamingHistogram wider;
  wider.Record(3);
  wider.Record(1 << 20);
  h.Merge(wider);
  EXPECT_EQ(h.bucket_lo(), StreamingHistogram::BucketIndex(3));
  EXPECT_EQ(h.bucket_hi(), StreamingHistogram::BucketIndex(1 << 20));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), uint64_t{1} << 20);

  h.Clear();
  EXPECT_GT(h.bucket_lo(), h.bucket_hi());
  EXPECT_EQ(h.count(), 0u);
}

TEST(StreamingHistogramTest, QuantilesClampToExactExtremes) {
  StreamingHistogram h;
  h.Record(777);
  // A single sample reads exactly, at every quantile, despite bucketing.
  EXPECT_EQ(h.Percentile(0.0), 777.0);
  EXPECT_EQ(h.Percentile(0.5), 777.0);
  EXPECT_EQ(h.Percentile(1.0), 777.0);
  // A quantile landing in the saturated top bucket stays within the
  // exact recorded extremes.
  h.Record(StreamingHistogram::kMaxValue * 2);
  const double top = h.Percentile(1.0);
  EXPECT_GE(top, static_cast<double>(StreamingHistogram::BucketLow(
                     StreamingHistogram::kNumBuckets - 1)));
  EXPECT_LE(top, static_cast<double>(StreamingHistogram::kMaxValue * 2));
  // Alone in the histogram, a saturated value reads back exactly (the
  // min/max clamp).
  StreamingHistogram only;
  only.Record(StreamingHistogram::kMaxValue * 2);
  EXPECT_EQ(only.Percentile(0.5),
            static_cast<double>(StreamingHistogram::kMaxValue * 2));
}

TEST(StreamingHistogramTest, PercentileFromCountsHonorsStartHint) {
  StreamingHistogram h;
  h.Record(100, 50);
  h.Record(5000, 50);
  const auto& b = h.buckets();
  const double no_hint = StreamingHistogram::PercentileFromCounts(
      b.data(), b.size(), h.count(), 0.9);
  const double hinted = StreamingHistogram::PercentileFromCounts(
      b.data(), b.size(), h.count(), 0.9, h.bucket_lo());
  EXPECT_EQ(no_hint, hinted);  // the hint is a pure optimization
  EXPECT_GE(hinted, 4000.0);   // p90 sits in the 5000 bucket
}

TEST(StreamingHistogramTest, SelfMergeDoublesCounts) {
  StreamingHistogram h;
  h.Record(10, 3);
  h.Merge(h);
  EXPECT_EQ(h.count(), 6u);
}

// --- Exact Histogram hardening ---

TEST(HistogramTest, SelfMergeDoublesEverySample) {
  sim::Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Merge(h);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 6.0);
}

TEST(HistogramTest, PercentileInterpolatesBetweenRanks) {
  sim::Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_EQ(h.Percentile(0.5), 1.5);
  EXPECT_EQ(h.Percentile(0.0), 1.0);
  EXPECT_EQ(h.Percentile(1.0), 2.0);
  sim::Histogram empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
  empty.Merge(h);  // merge into empty works
  EXPECT_EQ(empty.count(), 2u);
}

// --- TimeSeriesCollector unit ---

TimeSeriesConfig UnitConfig() {
  TimeSeriesConfig cfg;
  cfg.enabled = true;
  cfg.interval = 1 * sim::kSecond;
  return cfg;
}

TEST(TimeSeriesConfigTest, ValidateRejectsBadValues) {
  TimeSeriesConfig cfg = UnitConfig();
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.interval = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = UnitConfig();
  cfg.retention_windows = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = UnitConfig();
  cfg.aggregate_streaming.assign(33, "x");
  EXPECT_FALSE(cfg.Validate().ok());
  // Disabled configs are not validated (nothing will run).
  cfg.enabled = false;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(TimeSeriesCollectorTest, CounterDeltasAreSparse) {
  MetricsRegistry reg;
  sim::Counter c;
  reg.RegisterCounter("n/ops", &c);
  TimeSeriesCollector col(UnitConfig(), &reg);

  c.Increment(5);
  col.Sample(1 * sim::kSecond);
  c.Increment(3);
  col.Sample(2 * sim::kSecond);
  col.Sample(3 * sim::kSecond);  // idle: nothing stored
  col.Sample(4 * sim::kSecond);  // idle
  c.Increment(7);
  col.Sample(5 * sim::kSecond);

  EXPECT_EQ(col.windows(), 5u);
  EXPECT_EQ(col.At("n/ops", 1), 5.0);
  EXPECT_EQ(col.At("n/ops", 2), 3.0);
  EXPECT_EQ(col.At("n/ops", 3), 0.0);  // gap-filled zero
  EXPECT_EQ(col.At("n/ops", 4), 0.0);
  EXPECT_EQ(col.At("n/ops", 5), 7.0);
  EXPECT_EQ(col.Latest("n/ops"), 7.0);
  // Unknown keys read the fallback.
  EXPECT_EQ(col.At("n/nope", 1, -1.0), -1.0);
}

TEST(TimeSeriesCollectorTest, LevelsSampleAndHold) {
  MetricsRegistry reg;
  sim::Gauge g;
  reg.RegisterGauge("n/depth", &g);
  TimeSeriesCollector col(UnitConfig(), &reg);

  g.Set(4);
  col.Sample(1 * sim::kSecond);
  col.Sample(2 * sim::kSecond);  // unchanged: not stored
  g.Set(9);
  col.Sample(3 * sim::kSecond);

  EXPECT_EQ(col.At("n/depth", 1), 4.0);
  EXPECT_EQ(col.At("n/depth", 2), 4.0);  // held, not zero
  EXPECT_EQ(col.At("n/depth", 3), 9.0);
  // Past the last change a level keeps reading the held value...
  col.Sample(4 * sim::kSecond);
  EXPECT_EQ(col.At("n/depth", 4), 9.0);
  // ...while a rate series would read zero (see CounterDeltasAreSparse).
}

TEST(TimeSeriesCollectorTest, ReRegisteredCounterResetClamps) {
  MetricsRegistry reg;
  auto first = std::make_unique<sim::Counter>();
  reg.RegisterCounter("n/ops", first.get());
  TimeSeriesCollector col(UnitConfig(), &reg);

  first->Increment(100);
  col.Sample(1 * sim::kSecond);
  EXPECT_EQ(col.At("n/ops", 1), 100.0);

  // Component restart: a fresh counter replaces the old name. The new
  // reading (7) is below the previous one (100); the delta must clamp
  // to the new absolute value, not wrap to a huge or negative number.
  sim::Counter second;
  first.reset();
  reg.RegisterCounter("n/ops", &second);
  second.Increment(7);
  col.Sample(2 * sim::kSecond);
  EXPECT_EQ(col.At("n/ops", 2), 7.0);
}

TEST(TimeSeriesCollectorTest, RetentionEvictsOldWindows) {
  MetricsRegistry reg;
  sim::Counter c;
  reg.RegisterCounter("n/ops", &c);
  TimeSeriesConfig cfg = UnitConfig();
  cfg.retention_windows = 2;
  TimeSeriesCollector col(cfg, &reg);

  for (int w = 1; w <= 3; ++w) {
    c.Increment(static_cast<uint64_t>(w) * 10);
    col.Sample(w * sim::kSecond);
  }
  EXPECT_EQ(col.At("n/ops", 1, -1.0), -1.0);  // evicted
  EXPECT_EQ(col.At("n/ops", 2), 20.0);
  EXPECT_EQ(col.At("n/ops", 3), 30.0);
  // The JSON export starts at the first retained window.
  const std::string json = TimeSeriesJson(col);
  EXPECT_NE(json.find("\"first_window\":2"), std::string::npos);
}

TEST(TimeSeriesCollectorTest, StreamQuantilesPerWindowAndRestart) {
  MetricsRegistry reg;
  auto first = std::make_unique<StreamingHistogram>();
  reg.RegisterStreamingHistogram("c1/log/force_latency_us", first.get());
  TimeSeriesCollector col(UnitConfig(), &reg);

  for (int i = 0; i < 10; ++i) first->Record(100);
  col.Sample(1 * sim::kSecond);
  EXPECT_EQ(col.At("c1/log/force_latency_us/count", 1), 10.0);
  // Windowed quantiles interpolate inside the landing bucket: within
  // the histogram's 1/16 relative resolution of the exact value.
  EXPECT_NEAR(col.At("c1/log/force_latency_us/p99", 1), 100.0, 100.0 / 16);
  // The default aggregate follows the per-node stream.
  EXPECT_EQ(col.At("cluster/log/force_latency_us/count", 1), 10.0);
  EXPECT_NEAR(col.At("cluster/log/force_latency_us/p99", 1), 100.0,
              100.0 / 16);

  // Quiet window: no quantile values stored, reads fall back to zero.
  col.Sample(2 * sim::kSecond);
  EXPECT_EQ(col.At("c1/log/force_latency_us/p99", 2), 0.0);
  EXPECT_EQ(col.At("cluster/log/force_latency_us/count", 2), 0.0);

  // Restart: a fresh histogram under the same name, with *fewer* counts
  // than the previous reading and different occupied buckets. The
  // window delta must be the new histogram's own counts — stale prev
  // buckets from the old object must not bleed in.
  StreamingHistogram second;
  first.reset();
  reg.RegisterStreamingHistogram("c1/log/force_latency_us", &second);
  for (int i = 0; i < 4; ++i) second.Record(9000);
  col.Sample(3 * sim::kSecond);
  EXPECT_EQ(col.At("c1/log/force_latency_us/count", 3), 4.0);
  const double p99 = col.At("c1/log/force_latency_us/p99", 3);
  EXPECT_NEAR(p99, 9000.0, 9000.0 * 0.07);  // bucket resolution
}

TEST(TimeSeriesCollectorTest, ExcludedPrefixesAreNotSampled) {
  MetricsRegistry reg;
  sim::Counter sampled;
  reg.RegisterCounter("n/ops", &sampled);
  // Process-wide values (shared across concurrent trials) must stay out
  // of the deterministic series.
  reg.RegisterCallback("process/bytes_copied", []() { return 123.0; });
  TimeSeriesCollector col(UnitConfig(), &reg);
  sampled.Increment(1);
  col.Sample(1 * sim::kSecond);
  EXPECT_EQ(col.At("n/ops", 1), 1.0);
  EXPECT_EQ(col.At("process/bytes_copied", 1, -1.0), -1.0);
  EXPECT_EQ(col.series_index().count("process/bytes_copied"), 0u);
}

TEST(TimeSeriesCollectorTest, RegistryVersionGatesReEnumeration) {
  MetricsRegistry reg;
  sim::Counter c;
  reg.RegisterCounter("n/ops", &c);
  const uint64_t v = reg.version();
  // Idempotent re-registration of the identical entry: no version bump,
  // so a component registering twice between windows cannot churn the
  // collector's cached slots.
  reg.RegisterCounter("n/ops", &c);
  EXPECT_EQ(reg.version(), v);
  sim::Counter other;
  reg.RegisterCounter("n/ops", &other);
  EXPECT_GT(reg.version(), v);
}

// --- HealthMonitor rules ---

struct HealthRig {
  MetricsRegistry reg;
  sim::Counter busy_a, busy_b;
  std::unique_ptr<TimeSeriesCollector> col;
  std::unique_ptr<HealthMonitor> mon;

  explicit HealthRig(HealthConfig hcfg) {
    reg.RegisterCounter("a/cpu/busy_ns", &busy_a);
    reg.RegisterCounter("b/cpu/busy_ns", &busy_b);
    col = std::make_unique<TimeSeriesCollector>(UnitConfig(), &reg);
    hcfg.enabled = true;
    mon = std::make_unique<HealthMonitor>(hcfg, col.get());
    mon->AddServerNode("a");
    mon->AddServerNode("b");
  }

  void Window(uint64_t a_busy_ns, uint64_t b_busy_ns) {
    busy_a.Increment(a_busy_ns);
    busy_b.Increment(b_busy_ns);
    const sim::Time edge =
        static_cast<sim::Time>(col->windows() + 1) * sim::kSecond;
    col->Sample(edge);
    mon->Evaluate(edge);
  }
};

TEST(HealthMonitorTest, ImbalanceFiresWithHysteresisAndClears) {
  HealthConfig hcfg;
  hcfg.imbalance_cv_threshold = 0.5;
  hcfg.imbalance_min_mean_util = 0.05;
  hcfg.fire_windows = 2;
  hcfg.clear_windows = 2;
  HealthRig rig(hcfg);

  // Skewed: a=0.5 util, b=0.1 -> cv ~ 0.667 > 0.5. One breach window is
  // absorbed by hysteresis...
  rig.Window(500'000'000, 100'000'000);
  EXPECT_TRUE(rig.mon->alerts().empty());
  // ...the second raises.
  rig.Window(500'000'000, 100'000'000);
  ASSERT_EQ(rig.mon->alerts().size(), 1u);
  EXPECT_EQ(rig.mon->alerts()[0].rule, "imbalance");
  EXPECT_TRUE(rig.mon->alerts()[0].fired);
  EXPECT_EQ(rig.mon->active_alerts(), 1u);

  // Balanced again: clears only after clear_windows quiet windows.
  rig.Window(300'000'000, 300'000'000);
  EXPECT_EQ(rig.mon->alerts().size(), 1u);
  rig.Window(300'000'000, 300'000'000);
  ASSERT_EQ(rig.mon->alerts().size(), 2u);
  EXPECT_FALSE(rig.mon->alerts()[1].fired);
  EXPECT_EQ(rig.mon->active_alerts(), 0u);
}

TEST(HealthMonitorTest, ImbalanceQuietBelowMeanUtilFloor) {
  HealthConfig hcfg;
  hcfg.imbalance_cv_threshold = 0.5;
  hcfg.imbalance_min_mean_util = 0.05;
  hcfg.fire_windows = 1;
  HealthRig rig(hcfg);
  // Perfectly skewed but nearly idle: mean util 0.0005 is under the
  // floor, so the trivially-high CV must not fire.
  for (int i = 0; i < 4; ++i) rig.Window(1'000'000, 0);
  EXPECT_TRUE(rig.mon->alerts().empty());
  EXPECT_EQ(rig.mon->imbalance_cv_history().size(), 4u);
  EXPECT_EQ(rig.mon->imbalance_cv_history()[0], 0.0);
}

TEST(HealthMonitorTest, SloBurnNeedsMinForces) {
  MetricsRegistry reg;
  StreamingHistogram lat;
  reg.RegisterStreamingHistogram("c1/log/force_latency_us", &lat);
  TimeSeriesCollector col(UnitConfig(), &reg);
  HealthConfig hcfg;
  hcfg.enabled = true;
  hcfg.slo_force_p99_us = 1000.0;
  hcfg.slo_min_forces = 4;
  hcfg.fire_windows = 1;
  HealthMonitor mon(hcfg, &col);

  // Slow forces, but below the sample floor: no judgment.
  lat.Record(50'000, 2);
  col.Sample(1 * sim::kSecond);
  mon.Evaluate(1 * sim::kSecond);
  EXPECT_TRUE(mon.alerts().empty());

  // Enough slow forces: fires.
  lat.Record(50'000, 8);
  col.Sample(2 * sim::kSecond);
  mon.Evaluate(2 * sim::kSecond);
  ASSERT_EQ(mon.alerts().size(), 1u);
  EXPECT_EQ(mon.alerts()[0].rule, "slo_burn");
}

TEST(HealthMonitorTest, StarvationWatchesPendingWithoutProgress) {
  MetricsRegistry reg;
  sim::Gauge pending;
  sim::Counter forces;
  reg.RegisterGauge("c1/log/pending_records", &pending);
  reg.RegisterCounter("c1/log/forces_completed", &forces);
  TimeSeriesCollector col(UnitConfig(), &reg);
  HealthConfig hcfg;
  hcfg.enabled = true;
  hcfg.starvation_windows = 2;
  hcfg.fire_windows = 1;  // starvation uses its own window count
  HealthMonitor mon(hcfg, &col);
  mon.AddClientNode("c1");

  auto window = [&](sim::Time w) {
    col.Sample(w * sim::kSecond);
    mon.Evaluate(w * sim::kSecond);
  };

  // Stuck: records pending, no force completes, for 2 windows -> fires.
  pending.Set(12);
  window(1);
  EXPECT_TRUE(mon.alerts().empty());
  window(2);
  ASSERT_EQ(mon.alerts().size(), 1u);
  EXPECT_EQ(mon.alerts()[0].rule, "starvation");
  EXPECT_EQ(mon.alerts()[0].subject, "c1");

  // Progress resumes; the alert clears after clear_windows.
  for (sim::Time w = 3; mon.active_alerts() > 0 && w < 10; ++w) {
    forces.Increment(1);
    window(w);
  }
  EXPECT_EQ(mon.active_alerts(), 0u);
}

TEST(HealthConfigTest, ValidateRejectsBadHysteresis) {
  HealthConfig hcfg;
  hcfg.enabled = true;
  EXPECT_TRUE(hcfg.Validate().ok());
  hcfg.fire_windows = 0;
  EXPECT_FALSE(hcfg.Validate().ok());
  hcfg = HealthConfig{};
  hcfg.enabled = true;
  hcfg.imbalance_cv_threshold = -1;
  EXPECT_FALSE(hcfg.Validate().ok());
}

// --- Flight recorder ---

Span MakeSpan(uint64_t id, std::string_view node) {
  Span s;
  s.trace = 1;
  s.id = id;
  s.name = "op";
  s.node = std::string(node);
  s.start = id;
  s.end = id + 1;
  s.open = false;
  return s;
}

TEST(FlightRecorderTest, RingKeepsNewestAndDumpsChronologically) {
  FlightRecorderConfig cfg;
  cfg.ring_spans = 4;
  FlightRecorder rec(cfg);
  for (uint64_t id = 1; id <= 10; ++id) rec.Record(MakeSpan(id, "n1"));
  EXPECT_EQ(rec.RingSize("n1"), 4u);

  rec.Dump("n1", 99, "test");
  ASSERT_EQ(rec.dumps().size(), 1u);
  const auto& d = rec.dumps()[0];
  EXPECT_EQ(d.spans_recorded, 10u);  // total ever, not just retained
  ASSERT_EQ(d.spans.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(d.spans[i].id, 7 + i);  // oldest retained first
  }

  // A node that never recorded still dumps (empty), so a crash on an
  // idle node is visible in the artifact.
  rec.Dump("ghost", 100, "test");
  ASSERT_EQ(rec.dumps().size(), 2u);
  EXPECT_EQ(rec.dumps()[1].spans_recorded, 0u);
  EXPECT_TRUE(rec.dumps()[1].spans.empty());
}

TEST(FlightRecorderTest, TracerRingModeFeedsRecorderWhenDisabled) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  tracer.set_enabled(false);
  FlightRecorder rec(FlightRecorderConfig{});
  tracer.SetFlightRecorder(&rec);
  EXPECT_TRUE(tracer.active());  // ring mode counts as active

  SpanContext root = tracer.StartTrace("probe", "c1");
  ASSERT_TRUE(root.valid());
  tracer.AddArg(root, "k", 7);
  sim.RunFor(5);
  tracer.EndSpan(root);

  // The span reached the ring, closed, with its arg — and the full span
  // log stayed empty (tracing is off).
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(rec.RingSize("c1"), 1u);
  rec.Dump("c1", 5, "test");
  const Span& s = rec.dumps()[0].spans[0];
  EXPECT_EQ(s.name, "probe");
  EXPECT_EQ(s.end, 5u);
  ASSERT_EQ(s.args.size(), 1u);
  EXPECT_EQ(s.args[0].second, 7u);
}

// --- Cluster integration: chaos restart + telemetry regression ---

Status InitClient(harness::Cluster& cluster, client::LogClient& c) {
  Status result = Status::TimedOut("init never completed");
  bool done = false;
  c.Init([&](Status s) {
    result = s;
    done = true;
  });
  cluster.RunUntil([&]() { return done; }, 30 * sim::kSecond);
  return result;
}

TEST(ClusterTelemetryTest, SurvivesClientCrashRestartWithoutWraparound) {
  harness::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.telemetry.enabled = true;
  cfg.telemetry.interval = 250 * sim::kMillisecond;
  harness::Cluster cluster(cfg);
  harness::ClientHandle c = cluster.AddClient();
  ASSERT_TRUE(InitClient(cluster, *c).ok());

  auto write_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Result<Lsn> lsn = c->WriteLog(ToBytes("r" + std::to_string(i)));
      if (!lsn.ok()) continue;
      bool forced = false;
      c->ForceLog(*lsn, [&](Status) { forced = true; });
      cluster.RunUntil([&]() { return forced; }, 1 * sim::kSecond);
    }
  };
  write_some(8);

  chaos::FaultPlan plan;
  plan.CrashClient(cluster.Now() + 100 * sim::kMillisecond, 0)
      .RestartClient(cluster.Now() + 600 * sim::kMillisecond, 0);
  cluster.chaos().Execute(plan);
  cluster.RunFor(1 * sim::kSecond);
  ASSERT_TRUE(c->IsUp());
  ASSERT_TRUE(InitClient(cluster, *c).ok());
  write_some(8);
  cluster.RunFor(1 * sim::kSecond);

  // The restarted client re-registered fresh counters under the same
  // names; every windowed delta must stay a sane per-window magnitude —
  // a missed reset would show up as a ~2^64 wraparound value.
  const TimeSeriesCollector* col = cluster.telemetry();
  ASSERT_GT(col->windows(), 8u);
  size_t checked = 0;
  for (const auto& [name, index] : col->series_index()) {
    const auto& s = col->series_at(index);
    for (double v : s.values) {
      ASSERT_LT(std::abs(v), 1e15) << name;
    }
    checked += s.values.size();
  }
  EXPECT_GT(checked, 0u);
  // And the client's committed work from both lives is visible.
  EXPECT_GT(col->Latest("client-1/log/forces_completed", 0.0), 0.0);
}

// --- End-to-end determinism: serial vs parallel, and across trial
// --- thread counts ---

struct MiniRun {
  std::string series;
  std::string alerts;
  uint64_t committed = 0;
};

// A scaled-down E18 skewed scenario: every client hits servers {1,2,3}
// of 4, so the imbalance signal is live while the run stays fast.
MiniRun MiniE18(int workers) {
  const int clients = 6, servers = 4;
  harness::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.shard_workers = workers;
  cfg.nodes_per_shard = workers > 0 ? 2 : 1;
  cfg.run_until_quantum = sim::kMillisecond;
  cfg.telemetry.enabled = true;
  cfg.telemetry.interval = 250 * sim::kMillisecond;
  cfg.health.enabled = true;
  cfg.health.imbalance_min_mean_util = 1e-4;
  cfg.health.fire_windows = 2;
  harness::Cluster cluster(cfg);

  harness::StopLatch started(clients);
  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    for (int j = 0; j < 3; ++j) {
      log_cfg.servers.push_back(static_cast<net::NodeId>(j + 1));
    }
    log_cfg.generator_reps = log_cfg.servers;
    log_cfg.seed = 500 + static_cast<uint64_t>(i);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 20.0;
    driver_cfg.seed = 5000 + static_cast<uint64_t>(i);
    driver_cfg.max_log_backlog = 32;
    driver_cfg.start_latch = &started;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
  }
  for (int i = 0; i < clients; ++i) {
    harness::Et1Driver* d = drivers[static_cast<size_t>(i)].get();
    cluster.client_scheduler(i).At(
        static_cast<sim::Time>(i) * 100 * sim::kMillisecond,
        [d]() { d->Start(); });
  }
  MiniRun r;
  if (!cluster.RunUntil(started, 30 * sim::kSecond)) return r;
  cluster.RunFor(3 * sim::kSecond);
  r.series = TimeSeriesJson(*cluster.telemetry());
  r.alerts = AlertsJson(*cluster.health());
  for (auto& d : drivers) r.committed += d->committed();
  return r;
}

TEST(TelemetryDeterminismTest, SeriesAndAlertsByteIdenticalAcrossEngines) {
  const MiniRun serial = MiniE18(0);
  ASSERT_FALSE(serial.series.empty());
  ASSERT_GT(serial.committed, 0u);
  // The skewed placement must actually trip the monitor, otherwise the
  // alert-sequence comparison is vacuous.
  EXPECT_NE(serial.alerts.find("\"imbalance\""), std::string::npos);

  for (int workers : {2, 8}) {
    const MiniRun parallel = MiniE18(workers);
    EXPECT_EQ(serial.series, parallel.series) << "workers=" << workers;
    EXPECT_EQ(serial.alerts, parallel.alerts) << "workers=" << workers;
    EXPECT_EQ(serial.committed, parallel.committed);
  }
}

TEST(TelemetryDeterminismTest, TrialRunnerThreadCountInvariant) {
  // The same two trials (serial engine inside each) through 1 and 4
  // runner threads: per-trial exports must be identical — concurrency
  // changes wall-clock only.
  auto trial = [](size_t) { return MiniE18(0); };
  const auto one = harness::TrialRunner(1).Run(2, trial);
  const auto four = harness::TrialRunner(4).Run(2, trial);
  ASSERT_EQ(one.size(), four.size());
  for (size_t i = 0; i < one.size(); ++i) {
    ASSERT_FALSE(one[i].series.empty());
    EXPECT_EQ(one[i].series, four[i].series) << i;
    EXPECT_EQ(one[i].alerts, four[i].alerts) << i;
  }
  // Trials are independent reruns of one config: identical output.
  EXPECT_EQ(one[0].series, one[1].series);
}

}  // namespace
}  // namespace dlog::obs
