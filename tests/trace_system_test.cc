// End-to-end tests of the tracing subsystem through the full stack:
// one ET1 transaction must export a connected causal span tree covering
// every stage from txn begin to force ack; identical (config, seed) runs
// must export byte-identical traces; and the invariant probes must hold
// over a scripted crash/restart interleaving (the E3 scenario).

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "obs/export.h"
#include "obs/probes.h"
#include "obs/trace.h"
#include "tp/bank.h"
#include "tp/engine.h"
#include "tp/logger.h"
#include "tp/storage.h"

namespace dlog {
namespace {

/// A transaction-processing node with tracing attached, running serial
/// ET1 transactions (each waits for the previous commit, so exactly one
/// trace is active at a time).
struct TracedNode {
  explicit TracedNode(harness::Cluster* cluster) : cluster_(cluster) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = 1;
    log_ = cluster->AddClient(log_cfg);
    bool ready = false;
    log_->Init([&](Status st) { ready = st.ok(); });
    EXPECT_TRUE(cluster->RunUntil([&]() { return ready; }));
    logger_ = std::make_unique<tp::ReplicatedTxnLogger>(log_.get());
    page_disk_ = std::make_unique<tp::PageDisk>(1024);
    engine_ = std::make_unique<tp::TransactionEngine>(
        &cluster->sim(), logger_.get(), page_disk_.get(),
        tp::EngineConfig{});
    engine_->SetTracer(&cluster->tracer(), "client-1");
    bank_ = std::make_unique<tp::BankDb>(engine_.get(), tp::BankConfig{});
  }

  Status RunOneEt1(int i) {
    bool done = false;
    Status result = Status::Internal("pending");
    bank_->RunEt1(i % 100, i % 10, i % 5, 1, [&](Status st) {
      result = st;
      done = true;
    });
    EXPECT_TRUE(cluster_->RunUntil([&]() { return done; }));
    return result;
  }

  harness::Cluster* cluster_;
  harness::ClientHandle log_;
  std::unique_ptr<tp::ReplicatedTxnLogger> logger_;
  std::unique_ptr<tp::PageDisk> page_disk_;
  std::unique_ptr<tp::TransactionEngine> engine_;
  std::unique_ptr<tp::BankDb> bank_;
};

/// Walks parent links to the root; returns kNoSpan on a broken chain.
obs::SpanId RootOf(const std::vector<obs::Span>& spans,
                   const obs::Span& span) {
  const obs::Span* cur = &span;
  for (int guard = 0; guard < 1000; ++guard) {
    if (cur->parent == obs::kNoSpan) return cur->id;
    if (cur->parent > spans.size()) return obs::kNoSpan;
    const obs::Span& parent = spans[cur->parent - 1];
    if (parent.trace != cur->trace) return obs::kNoSpan;
    cur = &parent;
  }
  return obs::kNoSpan;
}

TEST(TraceSystemTest, Et1TransactionExportsConnectedSpanTree) {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.tracing = true;
  harness::Cluster cluster(cluster_cfg);
  TracedNode node(&cluster);

  ASSERT_TRUE(node.RunOneEt1(0).ok());
  // Let the partial-track flush timer fire so the track.write stage of
  // this transaction's records is recorded too.
  cluster.sim().RunFor(300 * sim::kMillisecond);

  const std::vector<obs::Span>& spans = cluster.tracer().spans();
  ASSERT_FALSE(spans.empty());

  // Exactly one transaction root.
  std::vector<const obs::Span*> roots;
  for (const obs::Span& s : spans) {
    if (s.name == "txn") roots.push_back(&s);
  }
  ASSERT_EQ(roots.size(), 1u);
  const obs::TraceId trace = roots[0]->trace;
  const obs::SpanId root_id = roots[0]->id;
  EXPECT_FALSE(roots[0]->open);

  // Every span belongs to that trace and reaches the root: the tree is
  // connected across client, wire, and all three servers.
  std::set<std::string> stages;
  std::set<std::string> nodes;
  for (const obs::Span& s : spans) {
    EXPECT_EQ(s.trace, trace) << s.name;
    EXPECT_EQ(RootOf(spans, s), root_id) << s.name;
    stages.insert(s.name);
    nodes.insert(s.node);
  }
  for (const char* stage :
       {"txn", "wal.group", "ForceLog", "commit", "wire.send",
        "nvram.buffer", "track.write", "force.ack"}) {
    EXPECT_TRUE(stages.count(stage)) << "missing stage " << stage;
  }
  // The trace crosses the wire: client plus at least two ack'ing servers.
  EXPECT_TRUE(nodes.count("client-1"));
  EXPECT_GE(nodes.size(), 3u);

  // The exporter renders it, and the structural probe agrees.
  std::string json = obs::ChromeTraceJson(cluster.tracer());
  for (const char* stage : {"txn", "ForceLog", "track.write"}) {
    EXPECT_NE(json.find(stage), std::string::npos);
  }
  EXPECT_TRUE(obs::CheckSpanTreeConnected(cluster.tracer()).empty());
}

std::string RunDeterministicWorkload() {
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.tracing = true;
  cluster_cfg.seed = 7;
  harness::Cluster cluster(cluster_cfg);
  TracedNode node(&cluster);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(node.RunOneEt1(i).ok());
  }
  cluster.sim().RunFor(300 * sim::kMillisecond);
  return obs::ChromeTraceJson(cluster.tracer()) + "---\n" +
         obs::TextTimeline(cluster.tracer());
}

TEST(TraceSystemTest, SameConfigAndSeedExportByteIdenticalTraces) {
  const std::string first = RunDeterministicWorkload();
  const std::string second = RunDeterministicWorkload();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceSystemTest, ProbesHoldAcrossScriptedCrashInterleaving) {
  // The E3 recovery scenario: a server crashes mid-stream, the client
  // keeps committing against the surviving pair, the server restarts and
  // catches up, then a second server takes its turn crashing.
  harness::ClusterConfig cluster_cfg;
  cluster_cfg.tracing = true;
  cluster_cfg.seed = 11;
  harness::Cluster cluster(cluster_cfg);
  TracedNode node(&cluster);

  int committed = 0;
  for (int i = 0; i < 24; ++i) {
    if (i == 4) cluster.server(1).Crash();
    if (i == 10) cluster.server(1).Restart();
    if (i == 14) cluster.server(2).Crash();
    if (i == 20) cluster.server(2).Restart();
    if (node.RunOneEt1(i).ok()) ++committed;
  }
  // With two of three servers always up, every commit must go through.
  EXPECT_EQ(committed, 24);
  cluster.sim().RunFor(300 * sim::kMillisecond);

  // Every committed transaction was acked by >= 2 servers before its
  // ForceLog completed; per-server record streams stayed monotonic; the
  // exported forest is structurally sound.
  std::vector<std::string> violations =
      obs::RunAllProbes(cluster.tracer(), /*quorum=*/2);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations[0];
}

}  // namespace
}  // namespace dlog
