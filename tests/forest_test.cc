#include <gtest/gtest.h>

#include <cmath>

#include "forest/append_forest.h"

namespace dlog::forest {
namespace {

using Node = AppendForest::Node;

AppendForest BuildWithKeys(uint64_t n) {
  AppendForest f;
  for (uint64_t k = 1; k <= n; ++k) {
    EXPECT_TRUE(f.Append(k, k * 100).ok());
  }
  return f;
}

TEST(AppendForestTest, EmptyFindIsNotFound) {
  AppendForest f;
  EXPECT_TRUE(f.Find(1).status().IsNotFound());
}

TEST(AppendForestTest, SingleNode) {
  AppendForest f;
  ASSERT_TRUE(f.Append(1, 7).ok());
  Result<Node> n = f.Find(1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->value, 7u);
  EXPECT_TRUE(f.CheckInvariants().ok());
}

TEST(AppendForestTest, RejectsNonContiguousKeys) {
  AppendForest f;
  ASSERT_TRUE(f.Append(1, 0).ok());
  EXPECT_FALSE(f.Append(3, 0).ok());   // gap
  EXPECT_FALSE(f.Append(1, 0).ok());   // repeat
  EXPECT_FALSE(f.Append(5, 4, 0).ok());  // inverted range
}

// Figure 4-3: the eleven-node append forest has trees rooted at keys 7
// (height 2), 10 (height 1), and 11 (height 0), chained by forest
// pointers from the most recently appended node.
TEST(AppendForestTest, Figure43ElevenNodes) {
  AppendForest f = BuildWithKeys(11);
  ASSERT_TRUE(f.CheckInvariants().ok());

  std::vector<uint64_t> roots = f.Roots();  // rightmost first
  ASSERT_EQ(roots.size(), 3u);
  // Node indices are 0-based: key k lives at index k-1.
  EXPECT_EQ(f.node(roots[0]).key_high, 11u);
  EXPECT_EQ(f.node(roots[0]).height, 0u);
  EXPECT_EQ(f.node(roots[1]).key_high, 10u);
  EXPECT_EQ(f.node(roots[1]).height, 1u);
  EXPECT_EQ(f.node(roots[2]).key_high, 7u);
  EXPECT_EQ(f.node(roots[2]).height, 2u);
}

// "A new root with key 12 would be appended with a forest pointer linking
// it to the node with key 11."
TEST(AppendForestTest, Figure43Append12) {
  AppendForest f = BuildWithKeys(12);
  ASSERT_TRUE(f.CheckInvariants().ok());
  const Node& n12 = f.node(11);
  EXPECT_EQ(n12.height, 0u);
  EXPECT_EQ(n12.forest, 10u);  // node with key 11
}

// "An additional node with key 13 would have height 1, the nodes with
// keys 11 and 12 as its left and right sons, and a forest pointer linking
// it to the tree rooted at the node with key 10."
TEST(AppendForestTest, Figure43Append13) {
  AppendForest f = BuildWithKeys(13);
  ASSERT_TRUE(f.CheckInvariants().ok());
  const Node& n13 = f.node(12);
  EXPECT_EQ(n13.height, 1u);
  EXPECT_EQ(n13.left, 10u);    // key 11
  EXPECT_EQ(n13.right, 11u);   // key 12
  EXPECT_EQ(n13.forest, 9u);   // tree rooted at key 10
}

// "Another node with key 14 could then be added with the nodes with keys
// 10 and 13 as sons, and a forest pointer pointing to the node with key 7."
TEST(AppendForestTest, Figure43Append14) {
  AppendForest f = BuildWithKeys(14);
  ASSERT_TRUE(f.CheckInvariants().ok());
  const Node& n14 = f.node(13);
  EXPECT_EQ(n14.height, 2u);
  EXPECT_EQ(n14.left, 9u);     // key 10
  EXPECT_EQ(n14.right, 12u);   // key 13
  EXPECT_EQ(n14.forest, 6u);   // key 7
}

TEST(AppendForestTest, EveryKeyFindableAtEverySize) {
  AppendForest f;
  for (uint64_t k = 1; k <= 300; ++k) {
    ASSERT_TRUE(f.Append(k, k * 2).ok());
    // After each append, every key written so far must be reachable.
    for (uint64_t q = 1; q <= k; ++q) {
      Result<Node> n = f.Find(q);
      ASSERT_TRUE(n.ok()) << "key " << q << " lost at size " << k;
      ASSERT_EQ(n->value, q * 2);
    }
  }
  EXPECT_TRUE(f.CheckInvariants().ok());
}

TEST(AppendForestTest, InvariantsHoldAtEverySizeUpTo1024) {
  AppendForest f;
  for (uint64_t k = 1; k <= 1024; ++k) {
    ASSERT_TRUE(f.Append(k, 0).ok());
    ASSERT_TRUE(f.CheckInvariants().ok()) << "size " << k;
  }
}

TEST(AppendForestTest, CompleteForestIsSingleTree) {
  // 2^n - 1 nodes form exactly one complete tree.
  for (uint32_t h = 0; h <= 9; ++h) {
    AppendForest f = BuildWithKeys((uint64_t{1} << (h + 1)) - 1);
    EXPECT_EQ(f.Roots().size(), 1u) << "height " << h;
    EXPECT_EQ(f.node(f.Roots()[0]).height, h);
  }
}

TEST(AppendForestTest, ForestHasAtMostLog2Trees) {
  AppendForest f;
  for (uint64_t k = 1; k <= 4096; ++k) {
    ASSERT_TRUE(f.Append(k, 0).ok());
    const double bound = std::log2(static_cast<double>(k)) + 1;
    EXPECT_LE(f.Roots().size(), static_cast<size_t>(bound) + 1)
        << "at size " << k;
  }
}

TEST(AppendForestTest, SearchTraversalsAreLogarithmic) {
  AppendForest f = BuildWithKeys(1 << 14);
  uint64_t worst = 0;
  for (uint64_t q = 1; q <= (1 << 14); q += 37) {
    uint64_t traversals = 0;
    ASSERT_TRUE(f.FindCounted(q, &traversals).ok());
    worst = std::max(worst, traversals);
  }
  // O(log2 n) with a small constant: 2*log2(16384) = 28.
  EXPECT_LE(worst, 28u);
}

TEST(AppendForestTest, RangeKeysCoverSpans) {
  AppendForest f;
  // Ranges as a log server uses them: each node indexes a run of LSNs.
  ASSERT_TRUE(f.Append(1, 10, 100).ok());
  ASSERT_TRUE(f.Append(11, 11, 200).ok());
  ASSERT_TRUE(f.Append(12, 40, 300).ok());
  ASSERT_TRUE(f.CheckInvariants().ok());
  EXPECT_EQ(f.Find(5)->value, 100u);
  EXPECT_EQ(f.Find(11)->value, 200u);
  EXPECT_EQ(f.Find(12)->value, 300u);
  EXPECT_EQ(f.Find(40)->value, 300u);
  EXPECT_TRUE(f.Find(41).status().IsNotFound());
  EXPECT_TRUE(f.Find(0).status().IsNotFound());
}

TEST(AppendForestTest, FindBelowFirstKeyIsNotFound) {
  AppendForest f;
  ASSERT_TRUE(f.Append(100, 120, 1).ok());
  EXPECT_TRUE(f.Find(99).status().IsNotFound());
  EXPECT_TRUE(f.Find(100).ok());
}

TEST(AppendForestTest, NodesAreImmutableOnceAppended) {
  AppendForest f = BuildWithKeys(6);
  // Snapshot all nodes, append more, verify the old nodes are unchanged
  // (the write-once storage requirement).
  std::vector<Node> before;
  for (uint64_t i = 0; i < f.size(); ++i) before.push_back(f.node(i));
  for (uint64_t k = 7; k <= 64; ++k) ASSERT_TRUE(f.Append(k, 0).ok());
  for (uint64_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(f.node(i).key_low, before[i].key_low);
    EXPECT_EQ(f.node(i).key_high, before[i].key_high);
    EXPECT_EQ(f.node(i).left, before[i].left);
    EXPECT_EQ(f.node(i).right, before[i].right);
    EXPECT_EQ(f.node(i).forest, before[i].forest);
    EXPECT_EQ(f.node(i).height, before[i].height);
  }
}

}  // namespace
}  // namespace dlog::forest
