#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace dlog::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&]() { order.push_back(3); });
  sim.At(10, [&]() { order.push_back(1); });
  sim.At(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(5, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  Time fired = 0;
  sim.At(100, [&]() {
    sim.After(50, [&]() { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, 150u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.At(10, [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.At(10, [&]() { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  // The id is stale: its slot was freed when the event ran. The old
  // cancelled-set implementation accepted it (returning true and leaking a
  // poisoned entry); the generation scheme detects it exactly.
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);  // must not underflow
}

TEST(SimulatorTest, StaleIdDoesNotCancelSlotReuser) {
  Simulator sim;
  bool first = false;
  bool second = false;
  EventId id1 = sim.At(10, [&]() { first = true; });
  sim.RunUntil(10);
  EXPECT_TRUE(first);
  // This event reuses the freed slot of id1; its generation differs, so
  // cancelling through the stale id must not touch it.
  EventId id2 = sim.At(20, [&]() { second = true; });
  EXPECT_NE(id1, id2);
  EXPECT_FALSE(sim.Cancel(id1));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_TRUE(second);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.At(10, []() {});
  EventId id = sim.At(20, []() {});
  sim.At(30, []() {});
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.Cancel(id));
  // The tombstoned entry may still sit in the queue, but it is not live.
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorTest, CancelledEventsPastRunUntilAreCollected) {
  Simulator sim;
  int count = 0;
  std::vector<EventId> far;
  for (int i = 0; i < 100; ++i) {
    far.push_back(sim.At(1000 + i, [&]() { ++count; }));
  }
  sim.At(10, [&]() { ++count; });
  for (EventId id : far) EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntil(20);  // collects the far tombstones eagerly
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.Now(), 20u);
  sim.Run();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, CompactionPreservesLiveEventOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> doomed;
  // Interleave survivors with a majority of soon-cancelled events so the
  // tombstone compaction (triggered when cancelled entries outnumber
  // live ones) runs mid-stream.
  for (int i = 0; i < 200; ++i) {
    sim.At(10 + 5 * i, [&order, i]() { order.push_back(i); });
    doomed.push_back(sim.At(11 + 5 * i, []() {}));
    doomed.push_back(sim.At(12 + 5 * i, []() {}));
  }
  for (EventId id : doomed) EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 200u);
  sim.Run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.events_executed(), 200u);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.At(10, [&]() { ++count; });
  sim.At(20, [&]() { ++count; });
  sim.At(30, [&]() { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20u);
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) sim.After(1, recurse);
  };
  sim.After(1, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 100u);
}

// --- Timer-wheel tier ---
//
// Timers at least 2^20 ticks out are staged in wheel buckets instead of
// the heap; the wheel is schedule-invisible, so everything observable
// (firing order, firing times, cancellation semantics) must match a
// heap-only engine exactly.

constexpr Duration kWheelHorizon = Duration{1} << 20;

TEST(TimerWheelTest, FarTimersAreStagedNearTimersAreNot) {
  Simulator sim;
  ASSERT_TRUE(sim.timer_wheel_enabled());
  sim.At(100, []() {});
  EXPECT_EQ(sim.wheel_pending(), 0u);  // below the horizon: straight to heap
  sim.At(kWheelHorizon + 5, []() {});
  EXPECT_EQ(sim.wheel_pending(), 1u);
}

TEST(TimerWheelTest, WheeledTimersFireInOrderAtExactTimes) {
  Simulator sim;
  std::vector<std::pair<int, Time>> fired;
  sim.At(3 * kWheelHorizon + 7, [&]() { fired.push_back({3, sim.Now()}); });
  sim.At(kWheelHorizon + 5, [&]() { fired.push_back({1, sim.Now()}); });
  sim.At(2 * kWheelHorizon, [&]() { fired.push_back({2, sim.Now()}); });
  sim.At(10, [&]() { fired.push_back({0, sim.Now()}); });
  sim.Run();
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], (std::pair<int, Time>{0, 10}));
  EXPECT_EQ(fired[1], (std::pair<int, Time>{1, kWheelHorizon + 5}));
  EXPECT_EQ(fired[2], (std::pair<int, Time>{2, 2 * kWheelHorizon}));
  EXPECT_EQ(fired[3], (std::pair<int, Time>{3, 3 * kWheelHorizon + 7}));
  EXPECT_EQ(sim.wheel_pending(), 0u);
}

TEST(TimerWheelTest, EqualFarTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const Time t = kWheelHorizon + 123;
  sim.At(t, [&]() { order.push_back(1); });
  sim.At(t, [&]() { order.push_back(2); });
  sim.At(t, [&]() { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelTest, CancelledWheeledTimerNeverFires) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.At(kWheelHorizon + 50, [&]() { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel reports failure
  sim.At(2 * kWheelHorizon, []() {});  // run time past the cancelled slot
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, DisableFlushesWheelAndPreservesSchedule) {
  Simulator sim;
  std::vector<int> order;
  sim.At(kWheelHorizon + 20, [&]() { order.push_back(2); });
  sim.At(kWheelHorizon + 10, [&]() { order.push_back(1); });
  ASSERT_EQ(sim.wheel_pending(), 2u);
  sim.EnableTimerWheel(false);
  EXPECT_EQ(sim.wheel_pending(), 0u);  // flushed into the heap
  EXPECT_FALSE(sim.timer_wheel_enabled());
  sim.At(kWheelHorizon + 15, [&]() { order.push_back(15); });  // heap now
  EXPECT_EQ(sim.wheel_pending(), 0u);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 15, 2}));
}

TEST(TimerWheelTest, ReenablingResumesStaging) {
  Simulator sim;
  sim.EnableTimerWheel(false);
  sim.At(kWheelHorizon + 1, []() {});
  EXPECT_EQ(sim.wheel_pending(), 0u);
  sim.EnableTimerWheel(true);
  sim.At(kWheelHorizon + 2, []() {});
  EXPECT_EQ(sim.wheel_pending(), 1u);
  sim.Run();
}

TEST(TimerWheelTest, IdenticalExecutionToHeapOnlyOnMixedWorkload) {
  // A self-rescheduling mix of near and far (later cancelled) timers;
  // the executed (time, label) sequence must be identical with the
  // wheel on and off.
  auto run = [](bool wheel) {
    Simulator sim;
    sim.EnableTimerWheel(wheel);
    std::vector<std::pair<Time, int>> log;
    struct Chain {
      Simulator* sim;
      std::vector<std::pair<Time, int>>* log;
      int id;
      int remaining;
      EventId decoy = 0;
      void Fire() {
        log->push_back({sim->Now(), id});
        if (decoy != 0) sim->Cancel(decoy);
        if (remaining-- == 0) return;
        decoy = sim->After(kWheelHorizon + 3 * id, []() {});
        sim->After(17 + id, [this]() { Fire(); });
      }
    };
    std::vector<Chain> chains;
    chains.reserve(4);
    for (int i = 0; i < 4; ++i) {
      chains.push_back(Chain{&sim, &log, i, 40});
    }
    for (auto& c : chains) {
      sim.At(static_cast<Time>(c.id), [&c]() { c.Fire(); });
    }
    sim.Run();
    return log;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(SecondsToDuration(1.5), 1'500'000'000u);
  EXPECT_EQ(SecondsToDuration(-1.0), 0u);
  EXPECT_DOUBLE_EQ(DurationToSeconds(2 * kSecond), 2.0);
  EXPECT_EQ(kMillisecond, 1'000'000u);
}

// --- Cpu ---

TEST(CpuTest, ExecutionTimeMatchesMips) {
  Simulator sim;
  Cpu cpu(&sim, 1.0);  // 1 MIPS: 1000 instructions = 1 ms
  Time done_at = 0;
  cpu.Execute(1000, [&]() { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, kMillisecond);
}

TEST(CpuTest, WorkIsServedFifo) {
  Simulator sim;
  Cpu cpu(&sim, 1.0);
  std::vector<Time> completions;
  cpu.Execute(1000, [&]() { completions.push_back(sim.Now()); });
  cpu.Execute(2000, [&]() { completions.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], kMillisecond);
  EXPECT_EQ(completions[1], 3 * kMillisecond);  // queued behind the first
}

TEST(CpuTest, UtilizationTracksBusyFraction) {
  Simulator sim;
  Cpu cpu(&sim, 1.0);
  cpu.Execute(1000, nullptr);  // busy 1 ms
  sim.RunUntil(4 * kMillisecond);
  EXPECT_NEAR(cpu.Utilization(), 0.25, 1e-9);
}

TEST(CpuTest, ResetStatsStartsNewWindow) {
  Simulator sim;
  Cpu cpu(&sim, 1.0);
  cpu.Execute(1000, nullptr);
  sim.RunUntil(2 * kMillisecond);
  cpu.ResetStats();
  sim.RunUntil(4 * kMillisecond);
  EXPECT_NEAR(cpu.Utilization(), 0.0, 1e-9);
}

TEST(CpuTest, InstructionsToTime) {
  Simulator sim;
  Cpu cpu(&sim, 4.0);
  EXPECT_EQ(cpu.InstructionsToTime(4'000'000), kSecond);
}

// --- Stats ---

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Add(0.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.25), 2.5);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
}

TEST(HistogramTest, AddAfterQueryResorts) {
  Histogram h;
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  h.Add(9.0);
  EXPECT_DOUBLE_EQ(h.Max(), 9.0);
}

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, MergeFoldsSamples) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(3.0);
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.Max(), 5.0);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), 3.0);
  // The source is untouched.
  EXPECT_EQ(b.count(), 1u);
}

TEST(HistogramTest, MergeEmptyIsNoop) {
  Histogram a, b;
  a.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(GaugeTest, TracksLevelAndHighWaterMark) {
  Gauge g;
  g.Set(4);
  g.Add(3);
  EXPECT_EQ(g.value(), 7);
  g.Add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(GaugeTest, NegativeLevelsAllowed) {
  Gauge g;
  g.Add(-3);
  EXPECT_EQ(g.value(), -3);
  EXPECT_EQ(g.max(), 0);
}

TEST(TimeWeightedGaugeTest, AverageWeightsByHoldingTime) {
  TimeWeightedGauge g;
  // Level 10 for 9 units, then 0 for 1 unit: mean 9.0, not 5.0.
  g.Set(0, 10.0);
  g.Set(9, 0.0);
  EXPECT_DOUBLE_EQ(g.Average(10), 9.0);
  EXPECT_DOUBLE_EQ(g.max(), 10.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TimeWeightedGaugeTest, BeforeAnySetIsZero) {
  TimeWeightedGauge g;
  EXPECT_DOUBLE_EQ(g.Average(100), 0.0);
}

TEST(TimeWeightedGaugeTest, NoElapsedTimeReturnsCurrentLevel) {
  TimeWeightedGauge g;
  g.Set(5, 3.0);
  EXPECT_DOUBLE_EQ(g.Average(5), 3.0);
}

TEST(TimeWeightedGaugeTest, ResetStartsNewWindow) {
  TimeWeightedGauge g;
  g.Set(0, 100.0);
  g.Set(10, 2.0);
  g.Reset(10);
  EXPECT_DOUBLE_EQ(g.Average(20), 2.0);
  // Max restarts from the level held at reset time.
  EXPECT_DOUBLE_EQ(g.max(), 2.0);
}

}  // namespace
}  // namespace dlog::sim
