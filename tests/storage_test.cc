#include <gtest/gtest.h>

#include "common/bytes.h"
#include "sim/simulator.h"
#include "storage/disk.h"
#include "storage/nvram.h"

namespace dlog::storage {
namespace {

TEST(SimDiskTest, WriteThenReadRoundTrip) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskConfig{});
  Bytes data = ToBytes("track zero contents");

  Status write_status = Status::Internal("not called");
  disk.WriteTrack(0, data, [&](Status st) { write_status = st; });
  sim.Run();
  EXPECT_TRUE(write_status.ok());

  Result<Bytes> read = Status::Internal("not called");
  disk.ReadTrack(0, [&](Result<Bytes> r) { read = std::move(r); });
  sim.Run();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(SimDiskTest, ReadUnwrittenTrackIsNotFound) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskConfig{});
  Result<Bytes> read = Status::Internal("not called");
  disk.ReadTrack(5, [&](Result<Bytes> r) { read = std::move(r); });
  sim.Run();
  EXPECT_TRUE(read.status().IsNotFound());
}

TEST(SimDiskTest, OversizedWriteRejected) {
  sim::Simulator sim;
  DiskConfig cfg;
  cfg.track_bytes = 64;
  SimDisk disk(&sim, cfg);
  Status st = Status::OK();
  disk.WriteTrack(0, Bytes(65, 0), [&](Status s) { st = s; });
  sim.Run();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SimDiskTest, OutOfRangeTrackRejected) {
  sim::Simulator sim;
  DiskConfig cfg;
  cfg.num_tracks = 10;
  SimDisk disk(&sim, cfg);
  Status st = Status::OK();
  disk.WriteTrack(10, Bytes(1, 0), [&](Status s) { st = s; });
  sim.Run();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SimDiskTest, WriteOnceModeForbidsOverwrite) {
  sim::Simulator sim;
  DiskConfig cfg;
  cfg.write_once = true;
  SimDisk disk(&sim, cfg);
  Status first = Status::Internal("x"), second = Status::OK();
  disk.WriteTrack(3, ToBytes("a"), [&](Status s) { first = s; });
  sim.Run();
  disk.WriteTrack(3, ToBytes("b"), [&](Status s) { second = s; });
  sim.Run();
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ToString(*disk.Peek(3)), "a");
}

TEST(SimDiskTest, SequentialWritesSkipSeek) {
  sim::Simulator sim;
  DiskConfig cfg;
  cfg.rpm = 3600;  // 16.67 ms/rotation
  cfg.avg_seek = 25 * sim::kMillisecond;
  SimDisk disk(&sim, cfg);

  sim::Time t0 = 0, t1 = 0, t2 = 0;
  disk.WriteTrack(0, Bytes(1, 0), [&](Status) { t0 = sim.Now(); });
  sim.Run();
  disk.WriteTrack(1, Bytes(1, 0), [&](Status) { t1 = sim.Now(); });
  sim.Run();
  disk.WriteTrack(500, Bytes(1, 0), [&](Status) { t2 = sim.Now(); });
  sim.Run();
  const sim::Duration sequential = t1 - t0;
  const sim::Duration seeky = t2 - t1;
  EXPECT_EQ(seeky, sequential + cfg.avg_seek);
}

TEST(SimDiskTest, CrashDropsInFlightWritePreservesContents) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskConfig{});
  bool called = false;
  disk.WriteTrack(0, ToBytes("durable"), [&](Status) { called = true; });
  sim.Run();
  ASSERT_TRUE(called);

  bool second_called = false;
  disk.WriteTrack(1, ToBytes("torn"), [&](Status) { second_called = true; });
  disk.Crash();  // before the write completes
  sim.Run();
  EXPECT_FALSE(second_called);
  EXPECT_TRUE(disk.IsWritten(0));   // old contents survive
  EXPECT_FALSE(disk.IsWritten(1));  // in-flight write lost whole
}

TEST(SimDiskTest, RequestsAreServedFifo) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskConfig{});
  std::vector<int> order;
  disk.WriteTrack(0, Bytes(1, 0), [&](Status) { order.push_back(0); });
  disk.WriteTrack(1, Bytes(1, 0), [&](Status) { order.push_back(1); });
  disk.ReadTrack(0, [&](Result<Bytes>) { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimDiskTest, UtilizationGrowsWithLoad) {
  sim::Simulator sim;
  SimDisk disk(&sim, DiskConfig{});
  disk.WriteTrack(0, Bytes(1, 0), nullptr);
  sim.Run();
  const double busy = disk.Utilization();
  EXPECT_GT(busy, 0.99);  // nothing but the write happened yet
  sim.RunUntil(sim.Now() * 2);
  EXPECT_NEAR(disk.Utilization(), busy / 2, 0.01);
}

// --- Nvram ---

TEST(NvramTest, PutGetErase) {
  Nvram nv(1024);
  ASSERT_TRUE(nv.Put("intervals", ToBytes("abc")).ok());
  EXPECT_EQ(ToString(*nv.Get("intervals")), "abc");
  EXPECT_EQ(nv.used(), 3u);
  ASSERT_TRUE(nv.Put("intervals", ToBytes("defg")).ok());  // replace
  EXPECT_EQ(nv.used(), 4u);
  nv.Erase("intervals");
  EXPECT_EQ(nv.used(), 0u);
  EXPECT_TRUE(nv.Get("intervals").status().IsNotFound());
}

TEST(NvramTest, CapacityEnforced) {
  Nvram nv(10);
  EXPECT_TRUE(nv.Put("a", Bytes(10, 0)).ok());
  Status st = nv.Put("b", Bytes(1, 0));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // Replacing an existing region accounts for the freed bytes.
  EXPECT_TRUE(nv.Put("a", Bytes(5, 0)).ok());
  EXPECT_TRUE(nv.Put("b", Bytes(5, 0)).ok());
}

TEST(NvramQueueTest, FifoOrder) {
  NvramQueue q(1024);
  ASSERT_TRUE(q.Append(ToBytes("one")).ok());
  ASSERT_TRUE(q.Append(ToBytes("two")).ok());
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(ToString(q.entries()[0]), "one");
  q.PopFront(1);
  EXPECT_EQ(ToString(q.entries()[0]), "two");
  EXPECT_EQ(q.used_bytes(), 3u);
}

TEST(NvramQueueTest, CapacityEnforced) {
  NvramQueue q(5);
  EXPECT_TRUE(q.Append(Bytes(5, 0)).ok());
  EXPECT_EQ(q.Append(Bytes(1, 0)).code(), StatusCode::kResourceExhausted);
  q.PopFront(1);
  EXPECT_TRUE(q.Append(Bytes(5, 0)).ok());
}

TEST(NvramQueueTest, PopMoreThanSizeIsSafe) {
  NvramQueue q(100);
  ASSERT_TRUE(q.Append(Bytes(10, 0)).ok());
  q.PopFront(5);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.used_bytes(), 0u);
}

TEST(StableCellTest, ReadWrite) {
  StableCell cell(7);
  EXPECT_EQ(cell.Read(), 7u);
  cell.Write(42);
  EXPECT_EQ(cell.Read(), 42u);
}

}  // namespace
}  // namespace dlog::storage
