// Availability explorer: evaluate the Section 3.2 availability formulas
// for any configuration, with a Monte-Carlo cross-check.
//
// Usage:  ./build/examples/availability_explorer [M] [N] [p]
// e.g.    ./build/examples/availability_explorer 5 2 0.05

#include <cstdio>
#include <cstdlib>

#include "analysis/availability.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace dlog;

  const int m = argc > 1 ? std::atoi(argv[1]) : 5;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const double p = argc > 3 ? std::atof(argv[3]) : 0.05;
  if (n < 1 || m < n || p < 0 || p > 1) {
    std::fprintf(stderr, "need M >= N >= 1 and p in [0,1]\n");
    return 1;
  }

  const double write = analysis::WriteLogAvailability(m, n, p);
  const double init = analysis::ClientInitAvailability(m, n, p);
  const double read = analysis::ReadAvailability(n, p);

  std::printf("Replicated log availability (M=%d, N=%d, p=%.3f)\n", m, n, p);
  std::printf("  WriteLog (<= M-N servers down) ......... %.6f\n", write);
  std::printf("  Client initialization (<= N-1 down) .... %.6f\n", init);
  std::printf("  ReadLog of one record (1 - p^N) ........ %.6f\n", read);
  std::printf("  Single mirrored-disk server baseline ... %.6f\n", 1 - p);

  // Monte-Carlo cross-check.
  Rng rng(2026);
  const int trials = 1'000'000;
  int write_ok = 0, init_ok = 0, read_ok = 0;
  for (int t = 0; t < trials; ++t) {
    int down = 0, holder_down = 0;
    for (int i = 0; i < m; ++i) {
      if (rng.Bernoulli(p)) {
        ++down;
        if (i < n) ++holder_down;
      }
    }
    if (down <= m - n) ++write_ok;
    if (down <= n - 1) ++init_ok;
    if (holder_down < n) ++read_ok;
  }
  std::printf("Monte Carlo (%d trials):\n", trials);
  std::printf("  WriteLog %.6f   init %.6f   read %.6f\n",
              double(write_ok) / trials, double(init_ok) / trials,
              double(read_ok) / trials);

  // The generator availability (Appendix I) for N representatives.
  std::printf("Identifier generator with %d representatives: %.6f\n", n,
              analysis::GeneratorAvailability(n, p));
  return 0;
}
