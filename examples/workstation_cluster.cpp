// Workstation cluster: a scaled-down version of the paper's target
// environment — a handful of workstation nodes each running local ET1
// transactions at 10 TPS, logging to shared log servers over a simulated
// 10 Mbit LAN. Prints the per-server load figures the Section 4.1
// capacity analysis predicts.
//
// Usage:  ./build/examples/workstation_cluster [clients] [servers] [secs]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "harness/cluster.h"
#include "harness/et1_driver.h"

int main(int argc, char** argv) {
  using namespace dlog;

  const int clients = argc > 1 ? std::atoi(argv[1]) : 10;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 3;
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 20;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = servers;
  cluster_cfg.num_networks = 2;  // the paper's dual-LAN configuration
  harness::Cluster cluster(cluster_cfg);

  std::vector<std::unique_ptr<harness::Et1Driver>> drivers;
  for (int i = 0; i < clients; ++i) {
    client::LogClientConfig log_cfg;
    log_cfg.client_id = static_cast<ClientId>(i + 1);
    harness::Et1DriverConfig driver_cfg;
    driver_cfg.tps = 10.0;
    driver_cfg.seed = 100 + i;
    drivers.push_back(std::make_unique<harness::Et1Driver>(
        &cluster, log_cfg, driver_cfg));
    drivers.back()->Start();
  }

  cluster.sim().RunFor(static_cast<sim::Duration>(seconds) * sim::kSecond);

  uint64_t committed = 0;
  sim::Histogram latency;
  for (auto& d : drivers) {
    committed += d->committed();
    for (double v :
         {d->txn_latency_ms().Percentile(0.5), 0.0}) {  // merge roughly
      (void)v;
    }
  }
  double p50 = 0, p95 = 0;
  for (auto& d : drivers) {
    p50 = std::max(p50, d->txn_latency_ms().Percentile(0.5));
    p95 = std::max(p95, d->txn_latency_ms().Percentile(0.95));
  }

  std::printf("=== workstation cluster: %d clients x 10 TPS, %d servers, "
              "%d simulated seconds ===\n",
              clients, servers, seconds);
  std::printf("committed transactions: %llu (%.1f TPS aggregate)\n",
              static_cast<unsigned long long>(committed),
              static_cast<double>(committed) / seconds);
  std::printf("txn latency (worst client): p50=%.2f ms p95=%.2f ms\n", p50,
              p95);

  for (int s = 1; s <= servers; ++s) {
    auto& srv = cluster.server(s);
    std::printf(
        "server %d: %6.1f forces/s  %5.1f tracks/s  cpu %4.1f%%  disk "
        "%4.1f%%  %7.2f KB/s logged\n",
        s, static_cast<double>(srv.forces_acked().value()) / seconds,
        static_cast<double>(srv.tracks_written().value()) / seconds,
        srv.cpu().Utilization() * 100.0, srv.disk().Utilization() * 100.0,
        static_cast<double>(srv.bytes_logged()) / seconds / 1024.0);
  }
  for (int n = 0; n < cluster.num_networks(); ++n) {
    std::printf("network %d: %.2f Mbit/s offered (%.1f%% of 10 Mbit)\n", n,
                static_cast<double>(cluster.network(n).bits_sent()) /
                    seconds / 1e6,
                cluster.network(n).Utilization() * 100.0);
  }
  return 0;
}
