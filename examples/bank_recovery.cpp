// Bank recovery: an ET1 (DebitCredit) bank whose write-ahead log lives on
// replicated log servers. We run transactions, crash the client node in
// the middle of a batch, restart it, run the paper's client
// initialization + WAL recovery, and verify that exactly the committed
// money survived.
//
// Build & run:  cmake --build build && ./build/examples/bank_recovery

#include <cstdio>
#include <memory>

#include "harness/cluster.h"
#include "tp/bank.h"
#include "tp/engine.h"
#include "tp/logger.h"

int main() {
  using namespace dlog;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 4;
  harness::Cluster cluster(cluster_cfg);

  tp::PageDisk page_disk(1024);  // the node's local data disk
  tp::BankConfig bank_cfg;
  bank_cfg.accounts = 1000;

  // --- Life 1: normal processing ---
  client::LogClientConfig log_cfg;
  log_cfg.client_id = 42;
  auto log = cluster.AddClient(log_cfg);
  bool ready = false;
  log->Init([&](Status st) { ready = st.ok(); });
  cluster.RunUntil([&]() { return ready; });

  tp::ReplicatedTxnLogger logger(log.get());
  auto engine = std::make_unique<tp::TransactionEngine>(
      &cluster.sim(), &logger, &page_disk, tp::EngineConfig{});
  auto bank = std::make_unique<tp::BankDb>(engine.get(), bank_cfg);

  int committed = 0;
  int64_t committed_total = 0;
  for (int i = 0; i < 25; ++i) {
    const int64_t delta = 10 + i;
    bool done = false;
    Status result = Status::Internal("pending");
    bank->RunEt1(i % bank_cfg.accounts, i % bank_cfg.tellers,
                 i % bank_cfg.branches, delta, [&](Status st) {
                   result = st;
                   done = true;
                 });
    cluster.RunUntil([&]() { return done; });
    if (result.ok()) {
      ++committed;
      committed_total += delta;
    }
  }
  std::printf("Committed %d ET1 transactions; total delta %lld\n",
              committed, static_cast<long long>(committed_total));

  // A transaction caught mid-flight by the crash: updates logged
  // (buffered) but no commit record forced.
  Result<tp::TxnId> torn = engine->Begin();
  if (torn.ok()) {
    (void)engine->Update(*torn, 0, 0, ToBytes("torn-write"));
  }

  std::printf("*** client node crashes ***\n");
  engine->Crash();
  cluster.CrashClient(log);

  // --- Life 2: restart and recover ---
  // The cluster rebuilds the node with the same identity (client 42);
  // initialization then runs the paper's Section 3.1.2 procedure.
  cluster.RestartClient(log);
  auto log2 = log;
  bool ready2 = false;
  for (int attempt = 0; attempt < 5 && !ready2; ++attempt) {
    bool done = false;
    log2->Init([&](Status st) {
      std::printf("Replicated-log recovery: %s (new epoch %llu)\n",
                  st.ToString().c_str(),
                  static_cast<unsigned long long>(log2->current_epoch()));
      ready2 = st.ok();
      done = true;
    });
    cluster.RunUntil([&]() { return done; });
  }

  tp::ReplicatedTxnLogger logger2(log2.get());
  tp::TransactionEngine recovered(&cluster.sim(), &logger2, &page_disk,
                                  tp::EngineConfig{});
  bool rec_done = false;
  recovered.Recover([&](Status st) {
    std::printf("WAL recovery: %s\n", st.ToString().c_str());
    rec_done = true;
  });
  cluster.RunUntil([&]() { return rec_done; }, 120 * sim::kSecond);

  tp::BankDb bank_after(&recovered, bank_cfg);
  const long long accounts = bank_after.TotalAccounts();
  const long long tellers = bank_after.TotalTellers();
  const long long branches = bank_after.TotalBranches();
  std::printf("After recovery: accounts=%lld tellers=%lld branches=%lld "
              "(expected %lld each)\n",
              accounts, tellers, branches,
              static_cast<long long>(committed_total));
  const bool ok = accounts == committed_total &&
                  tellers == committed_total &&
                  branches == committed_total;
  std::printf(ok ? "INVARIANT HOLDS: committed money preserved, torn "
                   "transaction rolled back\n"
                 : "INVARIANT VIOLATED\n");
  return ok ? 0 : 1;
}
