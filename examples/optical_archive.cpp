// Optical archive: Section 4.3 designs the on-disk structures so that
// "write once (optical) storage" can hold the log. This example runs a
// log server fleet whose disks are write-once, exercises writes, crash
// recovery, and the append-forest index, and shows that nothing ever
// needs to overwrite a track.
//
// Build & run:  cmake --build build && ./build/examples/optical_archive

#include <cstdio>

#include "harness/cluster.h"

int main() {
  using namespace dlog;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 3;
  cluster_cfg.server.disk.write_once = true;   // optical media
  cluster_cfg.server.disk.track_bytes = 2048;  // small tracks: more appends
  cluster_cfg.server.flush_interval = 20 * sim::kMillisecond;
  harness::Cluster cluster(cluster_cfg);

  client::LogClientConfig client_cfg;
  client_cfg.client_id = 1;
  auto log = cluster.AddClient(client_cfg);
  bool ready = false;
  log->Init([&](Status st) { ready = st.ok(); });
  cluster.RunUntil([&]() { return ready; });
  std::printf("log client initialized (epoch %llu), disks are WRITE-ONCE\n",
              static_cast<unsigned long long>(log->current_epoch()));

  // Stream a few hundred records with periodic forces.
  for (int batch = 0; batch < 20; ++batch) {
    Lsn last = kNoLsn;
    for (int i = 0; i < 10; ++i) {
      auto lsn = log->WriteLog(Bytes(120, static_cast<uint8_t>('A' + i)));
      if (lsn.ok()) last = *lsn;
    }
    bool done = false;
    log->ForceLog(last, [&](Status) { done = true; });
    cluster.RunUntil([&]() { return done; });
  }
  cluster.sim().RunFor(sim::kSecond);

  for (int s = 1; s <= 3; ++s) {
    auto& server = cluster.server(s);
    const forest::AppendForest* forest = server.ForestOf(1);
    std::printf(
        "server %d: %3llu tracks appended, %3zu records online, "
        "append-forest %s (%llu nodes)\n",
        s,
        static_cast<unsigned long long>(server.tracks_written().value()),
        server.LiveRecordsOf(1),
        forest != nullptr && forest->CheckInvariants().ok() ? "consistent"
                                                            : "(empty)",
        forest != nullptr
            ? static_cast<unsigned long long>(forest->size())
            : 0ULL);
  }

  // Crash and restart every server: recovery replays the write-once
  // stream (no track is ever rewritten).
  for (int s = 1; s <= 3; ++s) cluster.server(s).Crash();
  cluster.sim().RunFor(100 * sim::kMillisecond);
  for (int s = 1; s <= 3; ++s) cluster.server(s).Restart();

  cluster.CrashClient(log);
  cluster.RestartClient(log);
  auto log2 = log;
  ready = false;
  log2->Init([&](Status st) { ready = st.ok(); });
  cluster.RunUntil([&]() { return ready; });

  bool done = false;
  Result<Bytes> r = Status::Internal("never");
  log2->ReadLog(42, [&](Result<Bytes> got) {
    r = std::move(got);
    done = true;
  });
  cluster.RunUntil([&]() { return done; });
  std::printf(
      "after full-fleet crash+restart: ReadLog(42) -> %s, EndOfLog=%llu\n",
      r.ok() ? "OK" : r.status().ToString().c_str(),
      static_cast<unsigned long long>(log2->EndOfLog()));
  return r.ok() ? 0 : 1;
}
