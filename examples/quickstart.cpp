// Quickstart: bring up three log servers on a simulated LAN, attach a
// replicated-log client (N = 2 copies), write and force a few records,
// read one back, and show the per-server interval lists.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "harness/cluster.h"

int main() {
  using namespace dlog;

  harness::ClusterConfig cluster_cfg;
  cluster_cfg.num_servers = 3;
  harness::Cluster cluster(cluster_cfg);

  client::LogClientConfig client_cfg;
  client_cfg.client_id = 1;
  client_cfg.copies = 2;  // N: each record stored on 2 of the 3 servers
  auto log = cluster.AddClient(client_cfg);

  // 1. Client initialization (Section 3.1.2): gather interval lists from
  //    M-N+1 servers, obtain a new epoch, recover any partial tail.
  bool ready = false;
  log->Init([&](Status st) {
    std::printf("Init: %s (epoch %llu)\n", st.ToString().c_str(),
                static_cast<unsigned long long>(log->current_epoch()));
    ready = st.ok();
  });
  cluster.RunUntil([&]() { return ready; });

  // 2. Buffered writes followed by one force (grouping, Section 4.1).
  Lsn last = kNoLsn;
  for (int i = 0; i < 5; ++i) {
    Result<Lsn> lsn = log->WriteLog(ToBytes("log record #" +
                                            std::to_string(i)));
    if (lsn.ok()) last = *lsn;
  }
  bool forced = false;
  log->ForceLog(last, [&](Status st) {
    std::printf("ForceLog(%llu): %s\n",
                static_cast<unsigned long long>(last),
                st.ToString().c_str());
    forced = true;
  });
  cluster.RunUntil([&]() { return forced; });

  // 3. Read a record back (one ServerReadLog via the cached view).
  bool read_done = false;
  log->ReadLog(3, [&](Result<Bytes> r) {
    if (r.ok()) {
      std::printf("ReadLog(3) -> \"%s\"\n", ToString(*r).c_str());
    } else {
      std::printf("ReadLog(3) failed: %s\n", r.status().ToString().c_str());
    }
    read_done = true;
  });
  cluster.RunUntil([&]() { return read_done; });

  // 4. Show where the records landed.
  for (int s = 1; s <= cluster.num_servers(); ++s) {
    std::printf("Server %d intervals: %s\n", s,
                IntervalListToString(cluster.server(s).IntervalsOf(1))
                    .c_str());
  }
  std::printf("EndOfLog = %llu\n",
              static_cast<unsigned long long>(log->EndOfLog()));
  return 0;
}
